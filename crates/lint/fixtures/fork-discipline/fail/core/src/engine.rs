//! Fork-discipline fail fixture: the fault stream is forked
//! conditionally, so every later stream re-seeds when faults are off —
//! and the sequence no longer matches the manifest.

pub fn run_inner(seed: u64, faulty: bool) {
    let mut master = SimRng::from_seed(seed);
    let mut arrival_rng = master.fork();
    let mut service_rng = master.fork();
    let mut policy_rng = master.fork();
    let mut model_rng = master.fork();
    let mut fault_rng = SimRng::from_seed(0);
    if faulty {
        fault_rng = master.fork();
    }
    let mut retry_rng = master.fork();
    drive(
        &mut arrival_rng,
        &mut service_rng,
        &mut policy_rng,
        &mut model_rng,
        &mut fault_rng,
        &mut retry_rng,
    );
}
