//! Fork-discipline pass fixture: the canonical unconditional preamble,
//! name-for-name in manifest order.

pub fn run_inner(seed: u64) {
    let mut master = SimRng::from_seed(seed);
    let mut arrival_rng = master.fork();
    let mut service_rng = master.fork();
    let mut policy_rng = master.fork();
    let mut model_rng = master.fork();
    let mut fault_rng = master.fork();
    let mut retry_rng = master.fork();
    drive(
        &mut arrival_rng,
        &mut service_rng,
        &mut policy_rng,
        &mut model_rng,
        &mut fault_rng,
        &mut retry_rng,
    );
}
