//! Determinism pass fixture: sim-facing code that stays reproducible.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;

/// Virtual time comes from the event loop, never the wall clock.
pub fn advance(clock: &mut f64, dt: f64) -> f64 {
    *clock += dt;
    *clock
}

/// Iteration order is part of the trajectory, so ordered maps only.
pub fn tally(loads: &[u32]) -> BTreeMap<u32, usize> {
    let mut by_load = BTreeMap::new();
    for &l in loads {
        *by_load.entry(l).or_insert(0) += 1;
    }
    by_load
}

/// A pragma documents the one sanctioned exception.
pub fn scratch_lookup() {
    // lint: allow(determinism) — keys are re-sorted before any iteration
    let _scratch: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
}
