//! Determinism fail fixture: wall-clock time and unordered maps in a
//! sim-facing crate.

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::time::Instant;

/// Wall-clock reads make every run unrepeatable.
pub fn stamp() -> Instant {
    Instant::now()
}

/// HashMap iteration order varies per process; the trajectory drifts.
pub fn tally(loads: &[u32]) -> HashMap<u32, usize> {
    let mut by_load = HashMap::new();
    for &l in loads {
        *by_load.entry(l).or_insert(0) += 1;
    }
    by_load
}
