//! Differential and convergence tests for the population engine
//! (ISSUE 9 validation axes (a) and (b)).
//!
//! * Differential: at small n the per-server engine is cheap, so the two
//!   engines run the same spec over several seeds and their mean
//!   responses — independent estimates of one quantity, since the
//!   population state is an exact lossless statistic for symmetric
//!   policies — must agree within a few percent.
//! * Convergence: with fresh information the population process has an
//!   exact n → ∞ limit; at n = 10^4 and 10^5 the simulated means must
//!   sit within documented bounds of the analytic values (M/M/1 for
//!   Random, the supermarket fixed point for d = 2).
//!
//! Tolerances are generous relative to the statistical noise at these
//! arrival counts (seeded, so every run is deterministic); a failure
//! means an engine bug, not an unlucky draw.

use staleload_analytic::{mm1_response, try_supermarket_mean_response};
use staleload_core::{run_simulation, ArrivalSpec, EngineMode, SimConfig};
use staleload_info::InfoSpec;
use staleload_policies::PolicySpec;

const SEEDS: [u64; 5] = [11, 23, 37, 51, 73];

fn mean_over_seeds(
    seeds: &[u64],
    n: usize,
    lambda: f64,
    arrivals: u64,
    engine: EngineMode,
    info: &InfoSpec,
    policy: &PolicySpec,
) -> f64 {
    let mut total = 0.0;
    for &seed in seeds {
        let cfg = SimConfig::builder()
            .servers(n)
            .lambda(lambda)
            .arrivals(arrivals)
            // Half the run is warm-up: steady-state comparisons must not
            // average over the empty-start transient.
            .warmup_fraction(0.5)
            .seed(seed)
            .engine(engine)
            .build();
        let r = run_simulation(&cfg, &ArrivalSpec::Poisson, info, policy).expect("valid config");
        total += r.mean_response;
    }
    total / seeds.len() as f64
}

fn assert_close(label: &str, got: f64, want: f64, rel_tol: f64) {
    let err = (got - want).abs() / want;
    assert!(
        err <= rel_tol,
        "{label}: {got:.4} vs {want:.4} (rel err {:.2}% > {:.1}%)",
        err * 100.0,
        rel_tol * 100.0
    );
}

/// Both engines estimate the same mean response for Basic LI over a
/// periodic board at n = 32 — the tentpole's correctness claim at the
/// size where the per-server engine is still the cheap reference.
#[test]
fn engines_agree_for_periodic_basic_li() {
    let info = InfoSpec::Periodic { period: 5.0 };
    let policy = PolicySpec::BasicLi { lambda: 0.9 };
    let ps = mean_over_seeds(
        &SEEDS,
        32,
        0.9,
        60_000,
        EngineMode::PerServer,
        &info,
        &policy,
    );
    let pop = mean_over_seeds(
        &SEEDS,
        32,
        0.9,
        60_000,
        EngineMode::Population,
        &info,
        &policy,
    );
    assert_close("per-server vs population (basic-li, T=5)", pop, ps, 0.05);
}

/// Same differential check for d = 2 subset probing, the policy whose
/// routing goes through the without-replacement alias layer.
#[test]
fn engines_agree_for_periodic_d2() {
    let info = InfoSpec::Periodic { period: 5.0 };
    let policy = PolicySpec::KSubset { k: 2 };
    let ps = mean_over_seeds(
        &SEEDS,
        32,
        0.9,
        60_000,
        EngineMode::PerServer,
        &info,
        &policy,
    );
    let pop = mean_over_seeds(
        &SEEDS,
        32,
        0.9,
        60_000,
        EngineMode::Population,
        &info,
        &policy,
    );
    assert_close("per-server vs population (d2, T=5)", pop, ps, 0.05);
}

/// And for stale Greedy — the herding worst case, where every arrival in
/// a phase lands on the same advertised-minimum class.
#[test]
fn engines_agree_for_periodic_greedy() {
    let info = InfoSpec::Periodic { period: 2.0 };
    let policy = PolicySpec::Greedy;
    let ps = mean_over_seeds(
        &SEEDS,
        32,
        0.9,
        60_000,
        EngineMode::PerServer,
        &info,
        &policy,
    );
    let pop = mean_over_seeds(
        &SEEDS,
        32,
        0.9,
        60_000,
        EngineMode::Population,
        &info,
        &policy,
    );
    assert_close("per-server vs population (greedy, T=2)", pop, ps, 0.05);
}

/// Fresh-information Random at n = 10^4 is n independent M/M/1 queues;
/// the population mean must sit on the analytic value.
///
/// The anchors run at lambda = 0.6, not 0.9: M/M/1's relaxation time is
/// ~(1 - sqrt(lambda))^-2 service times (~380 at 0.9, ~20 at 0.6), and
/// with a 100n-arrival horizon plus the 50% warm-up above, the measured
/// window then sits 4+ relaxation times past the empty start — the
/// residual transient bias is ~0.2%, far under the tolerance. At 0.9 the
/// same test would quietly measure the cold-start transient instead.
#[test]
fn population_random_converges_to_mm1_at_1e4() {
    let pop = mean_over_seeds(
        &SEEDS[..3],
        10_000,
        0.6,
        1_000_000,
        EngineMode::Population,
        &InfoSpec::Fresh,
        &PolicySpec::Random,
    );
    assert_close(
        "fresh random at n=1e4 vs M/M/1",
        pop,
        mm1_response(0.6),
        0.03,
    );
}

/// Fresh d = 2 at n = 10^5 must sit on the supermarket fixed point (the
/// RK4-validated closed form) — the mean-field convergence axis at a
/// size only the population engine can reach in a unit test. Same
/// lambda = 0.6 / long-horizon reasoning as the M/M/1 anchor above.
#[test]
fn population_d2_converges_to_supermarket_at_1e5() {
    let limit = try_supermarket_mean_response(2, 0.6).expect("valid parameters");
    let pop = mean_over_seeds(
        &SEEDS[..2],
        100_000,
        0.6,
        10_000_000,
        EngineMode::Population,
        &InfoSpec::Fresh,
        &PolicySpec::KSubset { k: 2 },
    );
    assert_close("fresh d2 at n=1e5 vs supermarket ODE", pop, limit, 0.02);
}
