//! Engine-level property tests: for arbitrary valid configurations, every
//! (arrival spec, info model, policy) combination upholds the simulator's
//! invariants.

// Proptest closures sit outside #[test] fns, so clippy's
// allow-unwrap-in-tests does not reach them; the whole file is a test.
#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use staleload_core::{run_simulation, ArrivalSpec, FaultSpec, RetrySpec, SimConfig};
use staleload_info::{AgeKnowledge, DelaySpec, InfoSpec};
use staleload_policies::PolicySpec;
use staleload_sim::Dist;

fn arb_policy() -> impl Strategy<Value = PolicySpec> {
    prop_oneof![
        Just(PolicySpec::Random),
        (1usize..20).prop_map(|k| PolicySpec::KSubset { k }),
        Just(PolicySpec::Greedy),
        (0u32..10).prop_map(|threshold| PolicySpec::Threshold { threshold }),
        (0.1f64..1.5).prop_map(|lambda| PolicySpec::BasicLi { lambda }),
        (0.1f64..1.5).prop_map(|lambda| PolicySpec::AggressiveLi { lambda }),
        (0.1f64..1.5).prop_map(|lambda| PolicySpec::HybridLi { lambda }),
        (1usize..8, 0.1f64..1.5).prop_map(|(k, lambda)| PolicySpec::LiSubset { k, lambda }),
        (0.5f64..20.0).prop_map(|tau| PolicySpec::WeightedDecay { tau }),
        Just(PolicySpec::AdaptiveLi {
            alpha: 0.05,
            warmup: 50
        }),
    ]
}

fn arb_info() -> impl Strategy<Value = InfoSpec> {
    prop_oneof![
        Just(InfoSpec::Fresh),
        (0.1f64..20.0).prop_map(|period| InfoSpec::Periodic { period }),
        (0.1f64..5.0).prop_map(|mean| InfoSpec::Continuous {
            delay: DelaySpec::Exponential { mean },
            knowledge: AgeKnowledge::Actual,
        }),
        (0.1f64..5.0).prop_map(|mean| InfoSpec::Continuous {
            delay: DelaySpec::UniformWide { mean },
            knowledge: AgeKnowledge::MeanOnly,
        }),
        Just(InfoSpec::UpdateOnAccess),
    ]
}

fn arb_service() -> impl Strategy<Value = Dist> {
    prop_oneof![
        Just(Dist::exponential(1.0)),
        Just(Dist::constant(1.0)),
        Just(Dist::bounded_pareto(1.2, 0.3, 50.0).unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every run conserves jobs, measures exactly the post-warm-up set,
    /// reports non-negative responses, and never misses a history query.
    #[test]
    fn run_invariants_hold(
        servers in 1usize..24,
        lambda in 0.05f64..0.95,
        arrivals in 500u64..6_000,
        warmup_frac in 0.0f64..0.5,
        service in arb_service(),
        info in arb_info(),
        policy in arb_policy(),
        stealing in proptest::option::of(2u32..5),
        seed in any::<u64>(),
    ) {
        let clients = if matches!(info, InfoSpec::UpdateOnAccess) { servers * 2 } else { 1 };
        let arrivals_spec = if clients > 1 {
            ArrivalSpec::PoissonClients { clients }
        } else {
            ArrivalSpec::Poisson
        };
        let mut b = SimConfig::builder();
        b.servers(servers)
            .lambda(lambda)
            .arrivals(arrivals)
            .warmup_fraction(warmup_frac)
            .service(service)
            .seed(seed);
        if let Some(min) = stealing {
            b.work_stealing(min);
        }
        let cfg = b.build();
        let r = run_simulation(&cfg, &arrivals_spec, &info, &policy).expect("valid config");

        prop_assert_eq!(r.generated, arrivals);
        prop_assert_eq!(r.measured_jobs, arrivals - cfg.warmup_jobs());
        prop_assert!(r.response.min() >= 0.0 || r.measured_jobs == 0);
        prop_assert_eq!(r.history_misses, 0);
        prop_assert_eq!(r.detail.response_histogram.count(), r.measured_jobs);
        // All generated jobs completed (the drain emptied the system).
        let completed: u64 = r.detail.per_server_completed.iter().sum();
        prop_assert_eq!(completed, arrivals);
        // Occupancy metrics are sane.
        prop_assert!(r.detail.peak_jobs_in_system() >= 0.0);
        let fairness = r.detail.throughput_fairness();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&fairness));
        // Utilization cannot exceed 1 per server.
        for u in r.detail.utilizations(r.end_time.max(1e-9)) {
            prop_assert!(u <= 1.0 + 1e-9, "utilization {}", u);
        }
    }

    /// Bit-exact determinism holds for arbitrary configurations.
    #[test]
    fn arbitrary_runs_are_deterministic(
        servers in 1usize..16,
        lambda in 0.1f64..0.9,
        info in arb_info(),
        policy in arb_policy(),
        seed in any::<u64>(),
    ) {
        let arrivals_spec = if matches!(info, InfoSpec::UpdateOnAccess) {
            ArrivalSpec::PoissonClients { clients: 8 }
        } else {
            ArrivalSpec::Poisson
        };
        let cfg = SimConfig::builder()
            .servers(servers)
            .lambda(lambda)
            .arrivals(2_000)
            .seed(seed)
            .build();
        let a = run_simulation(&cfg, &arrivals_spec, &info, &policy).expect("valid config");
        let b = run_simulation(&cfg, &arrivals_spec, &info, &policy).expect("valid config");
        prop_assert_eq!(a.mean_response.to_bits(), b.mean_response.to_bits());
        prop_assert_eq!(a.end_time.to_bits(), b.end_time.to_bits());
        prop_assert_eq!(a.detail.per_server_completed, b.detail.per_server_completed);
    }

    /// Heterogeneous clusters uphold the same invariants, including with
    /// the history-backed continuous model and work stealing.
    #[test]
    fn hetero_runs_uphold_invariants(
        fast in 1usize..6,
        slow in 1usize..6,
        lambda in 0.1f64..0.8,
        seed in any::<u64>(),
        continuous in any::<bool>(),
    ) {
        let caps: Vec<f64> = (0..fast).map(|_| 1.5).chain((0..slow).map(|_| 0.5)).collect();
        let info = if continuous {
            InfoSpec::Continuous {
                delay: DelaySpec::Constant { mean: 1.0 },
                knowledge: AgeKnowledge::Actual,
            }
        } else {
            InfoSpec::Periodic { period: 2.0 }
        };
        let mut b = SimConfig::builder();
        b.capacities(caps.clone()).lambda(lambda).arrivals(3_000).seed(seed).work_stealing(2);
        let cfg = b.build();
        let policy = PolicySpec::HeteroLi { lambda, capacities: caps };
        let r = run_simulation(&cfg, &ArrivalSpec::Poisson, &info, &policy).expect("valid config");
        prop_assert_eq!(r.generated, 3_000);
        let completed: u64 = r.detail.per_server_completed.iter().sum();
        prop_assert_eq!(completed, 3_000);
        prop_assert_eq!(r.history_misses, 0);
    }

    /// `FaultSpec::none()` is bit-identical to never-failing fault specs:
    /// the fault machinery must not perturb fault-free trajectories, and a
    /// zero-probability loss channel must degenerate to the plain board.
    #[test]
    fn noop_faults_are_bit_identical_to_none(
        servers in 2usize..16,
        lambda in 0.1f64..0.9,
        period in 0.5f64..15.0,
        policy in arb_policy(),
        seed in any::<u64>(),
    ) {
        let info = InfoSpec::Periodic { period };
        let run_with = |faults: FaultSpec| {
            let cfg = SimConfig::builder()
                .servers(servers)
                .lambda(lambda)
                .arrivals(2_000)
                .seed(seed)
                .faults(faults)
                .build();
            run_simulation(&cfg, &ArrivalSpec::Poisson, &info, &policy).expect("valid config")
        };
        let base = run_with(FaultSpec::none());
        // MTBF far beyond the horizon: the first crash never fires.
        let never_crash = run_with(FaultSpec::crash(1e15, 1.0));
        prop_assert_eq!(base.mean_response.to_bits(), never_crash.mean_response.to_bits());
        prop_assert_eq!(base.end_time.to_bits(), never_crash.end_time.to_bits());
        prop_assert_eq!(never_crash.faults.crashes, 0);
        // Zero drop probability: every refresh lands immediately.
        let lossless = run_with(FaultSpec::drop(0.0));
        prop_assert_eq!(base.mean_response.to_bits(), lossless.mean_response.to_bits());
        prop_assert_eq!(base.end_time.to_bits(), lossless.end_time.to_bits());
    }

    /// Crash/recovery bookkeeping conserves jobs in both modes: everything
    /// generated completes, recoveries never outnumber crashes, downtime
    /// is non-negative, and the run is reproducible.
    #[test]
    fn crash_faults_conserve_jobs(
        servers in 2usize..12,
        lambda in 0.1f64..0.8,
        mtbf in 50.0f64..400.0,
        mttr in 1.0f64..40.0,
        redispatch in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut faults = FaultSpec::crash(mtbf, mttr);
        faults.crash = faults.crash.map(|mut c| { c.redispatch = redispatch; c });
        let cfg = SimConfig::builder()
            .servers(servers)
            .lambda(lambda)
            .arrivals(4_000)
            .seed(seed)
            .faults(faults)
            .build();
        let info = InfoSpec::Periodic { period: 5.0 };
        let policy = PolicySpec::BasicLi { lambda };
        let r = run_simulation(&cfg, &ArrivalSpec::Poisson, &info, &policy)
            .expect("valid config");
        prop_assert_eq!(r.generated, 4_000);
        let completed: u64 = r.detail.per_server_completed.iter().sum();
        prop_assert_eq!(completed, 4_000);
        prop_assert!(r.faults.recoveries <= r.faults.crashes);
        prop_assert!(r.faults.downtime >= 0.0);
        if !redispatch {
            prop_assert_eq!(r.faults.redispatched, 0);
        }
        let again = run_simulation(&cfg, &ArrivalSpec::Poisson, &info, &policy)
            .expect("valid config");
        prop_assert_eq!(r.mean_response.to_bits(), again.mean_response.to_bits());
        prop_assert_eq!(r.faults.crashes, again.faults.crashes);
    }

    /// Job conservation under the overload control plane: whatever the
    /// combination of bounded queues, deadlines, and retries, every
    /// generated job ends exactly once, and the counters reconcile
    /// exactly — `generated == completed + abandoned` and
    /// `rejected + reneged == retries + abandoned`.
    #[test]
    fn overload_controls_conserve_jobs(
        servers in 2usize..16,
        lambda in 0.5f64..0.99,
        queue_cap in proptest::option::of(1u32..6),
        deadline in proptest::option::of(0.5f64..10.0),
        with_retry in any::<bool>(),
        max_attempts in 2u32..6,
        policy in arb_policy(),
        seed in any::<u64>(),
    ) {
        let mut b = SimConfig::builder();
        b.servers(servers).lambda(lambda).arrivals(3_000).seed(seed);
        if let Some(cap) = queue_cap {
            b.queue_cap(cap);
        }
        if let Some(d) = deadline {
            b.deadline(d);
        }
        // The retry orbit needs something to bounce off.
        let retry_armed = with_retry && (queue_cap.is_some() || deadline.is_some());
        if retry_armed {
            b.retry(RetrySpec { max_attempts, base: 0.2, cap: 5.0 });
        }
        let cfg = b.build();
        let info = InfoSpec::Periodic { period: 5.0 };
        let r = run_simulation(&cfg, &ArrivalSpec::Poisson, &info, &policy)
            .expect("valid config");
        let o = &r.overload;

        prop_assert_eq!(r.generated, 3_000);
        // Law 1: every job ends exactly once.
        let completed: u64 = r.detail.per_server_completed.iter().sum();
        prop_assert_eq!(completed + o.abandoned, 3_000,
            "completed {} + abandoned {} != generated", completed, o.abandoned);
        // Law 2: every bounce either re-entered the orbit or was terminal.
        prop_assert_eq!(o.rejected + o.reneged, o.retries + o.abandoned,
            "rejected {} + reneged {} != retries {} + abandoned {}",
            o.rejected, o.reneged, o.retries, o.abandoned);
        // Controls that are off leave their counters at zero.
        if queue_cap.is_none() {
            prop_assert_eq!(o.rejected, 0);
        }
        if deadline.is_none() {
            prop_assert_eq!(o.reneged, 0);
        }
        if !retry_armed {
            prop_assert_eq!(o.retries, 0);
        }
        // Goodput never exceeds offered throughput, and only abandonment
        // separates them.
        prop_assert!(r.goodput() <= r.offered_throughput() + 1e-12);
        if o.abandoned == 0 {
            prop_assert_eq!(r.goodput().to_bits(), r.offered_throughput().to_bits());
        }
        // Determinism holds with the controls on.
        let again = run_simulation(&cfg, &ArrivalSpec::Poisson, &info, &policy)
            .expect("valid config");
        prop_assert_eq!(&again.overload, o);
        prop_assert_eq!(again.mean_response.to_bits(), r.mean_response.to_bits());
    }

    /// The `--faults` grammar round-trips through Display and FromStr.
    #[test]
    fn fault_spec_round_trips(
        mtbf in 1.0f64..1e6,
        mttr in 1.0f64..1e4,
        redispatch in any::<bool>(),
        drop in proptest::option::of(0.0f64..1.0),
        with_crash in any::<bool>(),
        partition in proptest::option::of((1.0f64..1e4, 1.0f64..1e3, 0.05f64..1.0, any::<bool>())),
        with_churn in any::<bool>(),
        corrupt in proptest::option::of(0.0f64..1.0),
    ) {
        let mut spec = if with_crash {
            let mut s = FaultSpec::crash(mtbf, mttr);
            s.crash = s.crash.map(|mut c| { c.redispatch = redispatch; c });
            s
        } else {
            FaultSpec::none()
        };
        if let Some(p) = drop {
            spec.loss = Some(staleload_core::LossSpec::drop(p));
        }
        if let Some((mtbf, duration, fraction, correlated)) = partition {
            spec.partition = Some(staleload_core::PartitionSpec {
                mtbf, duration, fraction, correlated,
            });
        }
        // FromStr validates, so only emit legal combinations: churn excludes
        // crash, and its downtime must stay below its MTBF.
        if with_churn && !with_crash {
            spec.churn = Some(staleload_core::ChurnSpec { mtbf, downtime: mtbf * 0.5 });
        }
        if let Some(fraction) = corrupt {
            spec.corrupt = Some(staleload_core::CorruptSpec { fraction });
        }
        let text = spec.to_string();
        let parsed: FaultSpec = text.parse().expect("display output must parse");
        prop_assert_eq!(parsed, spec, "{}", text);
    }

    /// Job conservation across the degraded-information fault space: any
    /// combination of view partitions, membership churn, report corruption,
    /// hedged dispatch, and quarantine completes every generated job
    /// exactly once — and does so deterministically.
    #[test]
    fn resilience_faults_conserve_jobs(
        servers in 3usize..16,
        lambda in 0.1f64..0.8,
        partition in proptest::option::of((20.0f64..200.0, 2.0f64..40.0, 0.1f64..0.9, any::<bool>())),
        churn in proptest::option::of((100.0f64..400.0, 1.0f64..30.0)),
        corrupt in proptest::option::of(0.01f64..0.8),
        hedge in proptest::option::of(2u32..4),
        quarantine in proptest::option::of((5.0f64..40.0, 2.0f64..20.0)),
        seed in any::<u64>(),
    ) {
        let mut faults = FaultSpec::none();
        if let Some((mtbf, duration, fraction, correlated)) = partition {
            faults.partition = Some(staleload_core::PartitionSpec {
                mtbf, duration, fraction, correlated,
            });
        }
        if let Some((mtbf, downtime)) = churn {
            faults.churn = Some(staleload_core::ChurnSpec { mtbf, downtime });
        }
        if let Some(fraction) = corrupt {
            faults.corrupt = Some(staleload_core::CorruptSpec { fraction });
        }
        faults.validate().expect("generated fault space is legal");
        let mut policy = PolicySpec::BasicLi { lambda };
        if let Some((window, backoff)) = quarantine {
            policy = PolicySpec::Quarantined { window, backoff, inner: Box::new(policy) };
        }
        if let Some(h) = hedge {
            // servers >= 3 keeps h <= n; hedging is the outermost wrapper.
            policy = PolicySpec::Hedged { h, inner: Box::new(policy) };
        }
        let cfg = SimConfig::builder()
            .servers(servers)
            .lambda(lambda)
            .arrivals(3_000)
            .seed(seed)
            .faults(faults)
            .build();
        // Partitions and corruption require a bulletin-board model.
        let info = InfoSpec::Periodic { period: 5.0 };
        let r = run_simulation(&cfg, &ArrivalSpec::Poisson, &info, &policy)
            .expect("valid config");

        prop_assert_eq!(r.generated, 3_000);
        // Every logical job completes exactly once: hedge replicas neither
        // arrive nor depart, so completion counts see only winners.
        let completed: u64 = r.detail.per_server_completed.iter().sum();
        prop_assert_eq!(completed, 3_000,
            "completed {} != generated under {:?}", completed, cfg.faults);
        // Every replica placed is eventually cancelled (it loses, or it
        // wins and displaces exactly one sibling).
        prop_assert_eq!(r.resilience.hedges_cancelled, r.resilience.hedges_issued);
        prop_assert!(r.resilience.hedges_won <= r.resilience.hedges_issued);
        if hedge.is_none() {
            prop_assert_eq!(r.resilience.hedges_issued, 0);
        }
        if partition.is_none() {
            prop_assert_eq!(r.resilience.partition_seconds.to_bits(), 0.0f64.to_bits());
        }
        if corrupt.is_none() {
            prop_assert_eq!(r.resilience.corrupted_reports, 0);
        }
        prop_assert!(r.resilience.partition_seconds >= 0.0);
        // Determinism holds across the whole fault space.
        let again = run_simulation(&cfg, &ArrivalSpec::Poisson, &info, &policy)
            .expect("valid config");
        prop_assert_eq!(again.mean_response.to_bits(), r.mean_response.to_bits());
        prop_assert_eq!(again.resilience, r.resilience);
        prop_assert_eq!(again.faults, r.faults);
    }
}

/// Policies the population engine supports, paired with supported info
/// models, for the mean-field conservation property below.
fn arb_population_policy() -> impl Strategy<Value = PolicySpec> {
    prop_oneof![
        Just(PolicySpec::Random),
        (1usize..6).prop_map(|k| PolicySpec::KSubset { k }),
        Just(PolicySpec::Greedy),
        (0.1f64..1.2).prop_map(|lambda| PolicySpec::BasicLi { lambda }),
    ]
}

fn arb_population_info() -> impl Strategy<Value = InfoSpec> {
    prop_oneof![
        Just(InfoSpec::Fresh),
        (0.2f64..20.0).prop_map(|period| InfoSpec::Periodic { period }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The population engine conserves jobs across arbitrary arrival /
    /// departure / refresh interleavings: every generated job is routed,
    /// completes exactly once, and the post-warm-up set is measured in
    /// full — the same invariants the per-server engine upholds, on the
    /// counts-matrix state. (In debug builds this also drives the
    /// engine's internal row-sum/busy-count debug assertions across the
    /// whole supported config space.)
    #[test]
    fn population_runs_conserve_jobs(
        servers in 1usize..400,
        lambda in 0.05f64..0.95,
        arrivals in 200u64..4_000,
        warmup_frac in 0.0f64..0.5,
        info in arb_population_info(),
        policy in arb_population_policy(),
        seed in any::<u64>(),
    ) {
        let cfg = SimConfig::builder()
            .servers(servers)
            .lambda(lambda)
            .arrivals(arrivals)
            .warmup_fraction(warmup_frac)
            .seed(seed)
            .engine(staleload_core::EngineMode::Population)
            .build();
        let r = run_simulation(&cfg, &ArrivalSpec::Poisson, &info, &policy)
            .expect("valid population config");

        prop_assert_eq!(r.generated, arrivals);
        prop_assert_eq!(r.measured_jobs, arrivals - cfg.warmup_jobs());
        prop_assert_eq!(r.detail.response_histogram.count(), r.measured_jobs);
        prop_assert!(r.response.min() >= 0.0 || r.measured_jobs == 0);
        // Every job completes exactly once (the drain emptied the system).
        let completed: u64 = r.detail.per_server_completed.iter().sum();
        prop_assert_eq!(completed, arrivals);
        prop_assert!(r.end_time > 0.0);
        // Utilization cannot exceed 1 per server.
        for u in r.detail.utilizations(r.end_time.max(1e-9)) {
            prop_assert!(u <= 1.0 + 1e-9, "utilization {}", u);
        }
        // Determinism holds across the supported config space.
        let again = run_simulation(&cfg, &ArrivalSpec::Poisson, &info, &policy)
            .expect("valid population config");
        prop_assert_eq!(again.mean_response.to_bits(), r.mean_response.to_bits());
        prop_assert_eq!(again.end_time.to_bits(), r.end_time.to_bits());
    }
}
