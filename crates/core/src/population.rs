//! The population-level (mean-field) engine (ISSUE 9).
//!
//! For symmetric configurations the per-server state is redundant: servers
//! are exchangeable, so the system's law is fully determined by *counts* —
//! how many servers currently hold `k` jobs. This module simulates that
//! count process directly, which makes the per-event cost independent of
//! `n` and lets a sweep touch clusters of a million servers.
//!
//! # State representation
//!
//! Between two board refreshes ("a phase"), a server is classified two
//! ways: by the queue length the board *advertises* for it (its **board
//! class**, frozen at the refresh instant) and by its **true** queue
//! length (which keeps evolving). The engine stores the joint counts
//!
//! ```text
//! rows[j][k] = number of servers advertised at boards[j] whose true
//!              length is k
//! ```
//!
//! Because every supported policy sees only the board, and servers inside
//! a board class are exchangeable, this matrix is a lossless statistic:
//!
//! * routing draws a board class `j` from the policy's distribution over
//!   advertised loads (frozen for the phase, hence alias-samplable), then
//!   a true length `k ∝ rows[j][k]` — exactly the law of "pick a concrete
//!   server" in the per-server engine, marginalized over which one;
//! * a departure strikes a uniformly random busy server: class
//!   `j ∝ busy[j]`, then `k ≥ 1 ∝ rows[j][k]`;
//! * a refresh collapses the matrix onto its true-length marginal and
//!   starts the next phase with board class = true length.
//!
//! Tie-breaks in the per-server policies (`KSubset`, `Greedy`, Basic LI's
//! `R → 0` indicator) are uniform over tied servers, so exchangeability is
//! exact, not approximate: for the supported subset the population engine
//! is **equal in distribution** to the per-server engine — only the RNG
//! consumption differs (statistics match; trajectories are not
//! bit-comparable).
//!
//! Fresh information is the degenerate phase of length zero: the board
//! always advertises the true length. The engine then keeps one class per
//! queue length (`boards[k] = k`) and moves a server between classes
//! whenever its length changes; routing scans the live counts instead of
//! consulting frozen tables.
//!
//! # Event handling
//!
//! There is no pending-event set. Memoryless service makes the aggregate
//! departure process a Poisson race at rate `busy/E[S]`, so three scalar
//! clocks suffice: the next arrival (its own Poisson stream), the next
//! departure (redrawn after every state change — exact by memorylessness),
//! and the next deterministic refresh. Response times never need the
//! departure events at all: a job that joins a FIFO queue holding `k` jobs
//! sees `k + 1` independent exponential stages (the remainder of the
//! in-service job is again exponential), so its sojourn is sampled as an
//! Erlang(`k + 1`) variate on the spot. Per-job marginals are exact;
//! cross-job correlations within one trial are not reproduced, which
//! affects only within-trial variance estimates, not means or quantiles.
//!
//! # RNG discipline
//!
//! The canonical six streams are forked in the usual order; the population
//! engine draws inter-arrival gaps from `arrival_rng`, the departure race
//! and Erlang response stages from `service_rng`, routing decisions from
//! `policy_rng`, and within-class member selection (including which busy
//! server departs) from `model_rng`. The fault and retry streams exist but
//! are never drawn (population mode rejects those features), mirroring the
//! per-server discipline.

use staleload_info::InfoSpec;
use staleload_policies::PolicySpec;
use staleload_sim::{Dist, OnlineStats, SimRng};
use staleload_workloads::AliasTable;

use crate::config::{ConfigError, PopulationSampler};
use crate::engine::FaultStats;
use crate::{
    ArrivalSpec, OverloadStats, ResilienceStats, RunDetail, RunResult, SimConfig, SimError,
};

/// Mirror of `staleload_policies::li::MIN_EXPECTED_ARRIVALS`: below this
/// the Basic LI schedule degenerates to the least-loaded indicator.
const MIN_EXPECTED_ARRIVALS: f64 = 1e-9;

/// The policy subset the population engine supports (symmetric policies
/// whose decisions depend on the board only through the multiset of
/// advertised loads).
#[derive(Debug, Clone, Copy)]
enum PopPolicy {
    Random,
    KSubset { d: usize },
    Greedy,
    BasicLi { lambda_hat: f64 },
}

/// The information-model subset: a shared snapshot view (periodic board)
/// or no staleness at all.
#[derive(Debug, Clone, Copy)]
enum PopInfo {
    Fresh,
    Periodic { period: f64 },
}

fn unsupported(what: &str, hint: &str) -> SimError {
    ConfigError::new(format!("population engine does not support {what}; {hint}")).into()
}

/// Validates the configuration against the population engine's supported
/// subset and extracts the internal specs.
///
/// `SimConfigBuilder::try_build` performs the same `SimConfig`-level
/// checks; they are repeated here because a deserialized config never went
/// through the builder.
fn validate(
    cfg: &SimConfig,
    arrivals: &ArrivalSpec,
    info: &InfoSpec,
    policy: &PolicySpec,
) -> Result<(PopPolicy, PopInfo, f64), SimError> {
    info.validate().map_err(ConfigError::new)?;
    policy.validate().map_err(ConfigError::new)?;
    if cfg.servers == 0 {
        return Err(ConfigError::new("population engine needs at least one server").into());
    }
    if !matches!(arrivals, ArrivalSpec::Poisson) {
        return Err(unsupported(
            "per-client arrival processes",
            "use the plain Poisson stream or the per-server engine",
        ));
    }
    if cfg.capacities.is_some() {
        return Err(unsupported(
            "heterogeneous capacities",
            "servers must be exchangeable for the count representation",
        ));
    }
    if cfg.work_stealing.is_some() {
        return Err(unsupported("work stealing", "use the per-server engine"));
    }
    if !cfg.faults.is_none() {
        return Err(unsupported("fault injection", "use the per-server engine"));
    }
    if cfg.queue_cap.is_some() || cfg.deadline.is_some() || cfg.retry.is_some() {
        return Err(unsupported(
            "overload controls (queue caps, deadlines, retries)",
            "use the per-server engine",
        ));
    }
    let svc_mean = match cfg.service {
        Dist::Exponential { mean } => mean,
        ref other => {
            return Err(ConfigError::new(format!(
                "population engine is exact only for memoryless (exponential) service, got {other}"
            ))
            .into())
        }
    };
    let pop_info = match *info {
        InfoSpec::Fresh => PopInfo::Fresh,
        InfoSpec::Periodic { period } => PopInfo::Periodic { period },
        ref other => {
            return Err(ConfigError::new(format!(
                "population engine supports fresh or periodic information (shared snapshot \
                 views), got {}; use the per-server engine",
                other.label()
            ))
            .into())
        }
    };
    let pop_policy = match *policy {
        PolicySpec::Random => PopPolicy::Random,
        // The per-server KSubset clamps k to n at selection time; mirror it.
        PolicySpec::KSubset { k } => PopPolicy::KSubset {
            d: k.min(cfg.servers),
        },
        PolicySpec::Greedy => PopPolicy::Greedy,
        PolicySpec::BasicLi { lambda } => PopPolicy::BasicLi { lambda_hat: lambda },
        ref other => {
            return Err(ConfigError::new(format!(
                "population engine supports the symmetric policies random, k-subset, greedy, \
                 and basic-li, got {}; use the per-server engine",
                other.label()
            ))
            .into())
        }
    };
    Ok((pop_policy, pop_info, svc_mean))
}

/// Samples a unit-rate Erlang(`stages`) variate: the sum of `stages`
/// independent Exp(1) draws, computed as `−ln ∏ uᵢ` in chunks so the
/// running product cannot underflow.
fn erlang(stages: u64, rng: &mut SimRng) -> f64 {
    let mut total = 0.0f64;
    let mut remaining = stages;
    while remaining > 0 {
        let chunk = remaining.min(16);
        let mut prod = 1.0f64;
        for _ in 0..chunk {
            prod *= rng.f64();
        }
        if prod <= 0.0 {
            // Only reachable if a draw returned exactly 0.0 (probability
            // 2⁻⁵³ each); nudge instead of producing an infinite response.
            prod = f64::MIN_POSITIVE;
        }
        total -= prod.ln();
        remaining -= chunk;
    }
    total
}

/// Walks `weights[from..]` to find the index owning offset `r`
/// (requires `r < Σ weights[from..]`).
#[inline]
fn scan_weights(weights: &[u64], from: usize, mut r: u64) -> usize {
    let mut i = from;
    loop {
        let w = weights[i];
        if r < w {
            return i;
        }
        r -= w;
        i += 1;
    }
}

/// Class-level Basic LI water-filling (paper Eqs. 2–4) over
/// `(board, count)` pairs instead of per-server loads.
///
/// `boards` must be strictly ascending with positive `sizes`. Fills
/// `per_server[j]` with the probability that one arrival goes to one
/// *member* of class `j`; the class as a whole receives
/// `sizes[j] · per_server[j]`. Equivalent to expanding the classes and
/// calling `basic_li_probabilities` (servers tied on load always land on
/// the same side of the cut), verified by `tests::water_fill_*`.
fn class_water_fill(boards: &[u32], sizes: &[u64], r: f64, per_server: &mut Vec<f64>) {
    debug_assert!(!boards.is_empty());
    per_server.clear();
    per_server.resize(boards.len(), 0.0);
    if r <= MIN_EXPECTED_ARRIVALS {
        // R → 0: the least-loaded indicator, uniform over the (single,
        // because boards are distinct) lowest class.
        per_server[0] = 1.0 / sizes[0] as f64;
        return;
    }
    let mut count = sizes[0] as f64;
    let mut sum = count * f64::from(boards[0]);
    let mut cut = 0usize; // last class inside the water level
    let mut cut_count = count;
    let mut cut_sum = sum;
    for j in 1..boards.len() {
        let q = f64::from(boards[j]);
        count += sizes[j] as f64;
        sum += sizes[j] as f64 * q;
        // Cost of levelling everything below class j up to q. It is
        // non-decreasing in j, so the classes inside the water level form
        // a prefix and one scan finds its end.
        if count * q - sum <= r {
            cut = j;
            cut_count = count;
            cut_sum = sum;
        }
    }
    let level = (cut_sum + r) / cut_count;
    for j in 0..=cut {
        per_server[j] = ((level - f64::from(boards[j])) / r).max(0.0);
    }
}

/// The frozen per-phase routing tables (periodic information only; fresh
/// information routes against the live counts instead).
enum Router {
    /// Oblivious random: uniform over servers (class ∝ size).
    Uniform { alias: Option<AliasTable> },
    /// Least advertised load among `d` distinct uniform servers.
    Subset { d: usize, alias: Option<AliasTable> },
    /// Least advertised load overall: always the first class (phase
    /// classes are non-empty and sorted ascending).
    Greedy,
    /// Basic LI: class `j` with probability `sizes[j]·p[j]`, via an alias
    /// table or a cumulative-weight scan depending on the sampler.
    BasicLi {
        alias: Option<AliasTable>,
        cum: Vec<f64>,
    },
}

/// Builds an alias table over non-negative class weights, mapping the
/// (unreachable for valid phase states) constructor error onto the typed
/// path required by the panic-hygiene lint.
fn build_alias(weights: &[f64]) -> Result<AliasTable, SimError> {
    AliasTable::new(weights).map_err(|e| {
        SimError::from(ConfigError::new(format!(
            "population routing weights are degenerate: {e}"
        )))
    })
}

impl Router {
    fn rebuild(
        policy: PopPolicy,
        sampler: PopulationSampler,
        boards: &[u32],
        sizes: &[u64],
        expected_arrivals: f64,
        scratch: &mut Vec<f64>,
    ) -> Result<Router, SimError> {
        let use_alias = sampler == PopulationSampler::Alias;
        let size_alias = |scratch: &mut Vec<f64>| -> Result<Option<AliasTable>, SimError> {
            if use_alias {
                scratch.clear();
                scratch.extend(sizes.iter().map(|&c| c as f64));
                Ok(Some(build_alias(scratch)?))
            } else {
                Ok(None)
            }
        };
        Ok(match policy {
            PopPolicy::Random => Router::Uniform {
                alias: size_alias(scratch)?,
            },
            PopPolicy::KSubset { d } => Router::Subset {
                d,
                alias: size_alias(scratch)?,
            },
            PopPolicy::Greedy => Router::Greedy,
            PopPolicy::BasicLi { .. } => {
                class_water_fill(boards, sizes, expected_arrivals, scratch);
                for (w, &c) in scratch.iter_mut().zip(sizes) {
                    *w *= c as f64;
                }
                if use_alias {
                    Router::BasicLi {
                        alias: Some(build_alias(scratch)?),
                        cum: Vec::new(),
                    }
                } else {
                    let mut cum = Vec::with_capacity(scratch.len());
                    let mut acc = 0.0;
                    for &w in scratch.iter() {
                        acc += w;
                        cum.push(acc);
                    }
                    Router::BasicLi { alias: None, cum }
                }
            }
        })
    }
}

/// Draws the minimum of `d` distinct uniform positions in `[0, n)` by
/// rejection (exact without-replacement sampling; expected O(d) redraws
/// for `d ≪ n`, the power-of-`d` regime this engine targets).
fn min_distinct_position(d: usize, n: usize, rng: &mut SimRng, drawn: &mut Vec<u64>) -> u64 {
    drawn.clear();
    let mut min_pos = u64::MAX;
    while drawn.len() < d {
        let p = rng.index(n) as u64;
        if drawn.contains(&p) {
            continue;
        }
        drawn.push(p);
        min_pos = min_pos.min(p);
    }
    min_pos
}

/// The class state: board classes with their true-length rows.
struct Classes {
    /// Advertised load per class, strictly ascending. Under periodic
    /// information only non-empty classes exist; under fresh information
    /// classes are length-indexed (`boards[k] = k`) and may be empty.
    boards: Vec<u32>,
    /// Servers per class (frozen within a periodic phase; each row sums
    /// to it).
    sizes: Vec<u64>,
    /// Busy (true length ≥ 1) servers per class.
    busy: Vec<u64>,
    /// `rows[j][k]` = members of class `j` with true length `k`.
    rows: Vec<Vec<u64>>,
    /// Scan hints: no occupied cell of `rows[j]` lies below `lo[j]`.
    lo: Vec<usize>,
    total_busy: u64,
    /// Total jobs in the system (Σ k·rows[j][k]).
    jobs: u64,
}

impl Classes {
    fn all_idle(n: u64) -> Classes {
        Classes {
            boards: vec![0],
            sizes: vec![n],
            busy: vec![0],
            rows: vec![vec![n]],
            lo: vec![0],
            total_busy: 0,
            jobs: 0,
        }
    }

    /// Collapses the matrix onto its true-length marginal: the next
    /// phase's board advertises every server's current length.
    fn refresh(&mut self, hist: &mut Vec<u64>) {
        hist.clear();
        for row in &self.rows {
            if hist.len() < row.len() {
                hist.resize(row.len(), 0);
            }
            for (k, &c) in row.iter().enumerate() {
                if c > 0 {
                    hist[k] += c;
                }
            }
        }
        self.boards.clear();
        self.sizes.clear();
        self.busy.clear();
        self.rows.clear();
        self.lo.clear();
        for (k, &c) in hist.iter().enumerate() {
            if c == 0 {
                continue;
            }
            self.boards.push(k as u32);
            self.sizes.push(c);
            self.busy.push(if k > 0 { c } else { 0 });
            let mut row = vec![0u64; k + 1];
            row[k] = c;
            self.rows.push(row);
            self.lo.push(k);
        }
    }

    /// Draws the true length of a uniformly random member of class `j`.
    #[inline]
    fn member_length(&self, j: usize, rng: &mut SimRng) -> usize {
        let r = rng.index(self.sizes[j] as usize) as u64;
        scan_weights(&self.rows[j], self.lo[j], r)
    }

    /// One arrival lands on a class-`j` member of true length `k`
    /// (periodic information: the member stays in its board class).
    #[inline]
    fn apply_arrival(&mut self, j: usize, k: usize) {
        let row = &mut self.rows[j];
        row[k] -= 1;
        if row.len() <= k + 1 {
            row.push(0);
        }
        row[k + 1] += 1;
        if k == 0 {
            self.busy[j] += 1;
            self.total_busy += 1;
        }
        self.jobs += 1;
    }

    /// A departure strikes a uniformly random busy server; returns its
    /// class and (pre-departure) true length and applies the decrement.
    #[inline]
    fn apply_departure(&mut self, rng: &mut SimRng) -> (usize, usize) {
        let r = rng.index(self.total_busy as usize) as u64;
        let j = scan_weights(&self.busy, 0, r);
        let r2 = rng.index(self.busy[j] as usize) as u64;
        let k = scan_weights(&self.rows[j], self.lo[j].max(1), r2);
        let row = &mut self.rows[j];
        row[k] -= 1;
        row[k - 1] += 1;
        if k - 1 < self.lo[j] {
            self.lo[j] = k - 1;
        }
        if k == 1 {
            self.busy[j] -= 1;
            self.total_busy -= 1;
        }
        self.jobs -= 1;
        (j, k)
    }

    // ---- fresh-information operations (class index = queue length) ----

    /// Materializes length-indexed classes up to `len` inclusive.
    fn ensure_length_class(&mut self, len: usize) {
        while self.boards.len() <= len {
            let k = self.boards.len();
            self.boards.push(k as u32);
            self.sizes.push(0);
            self.busy.push(0);
            let mut row = vec![0u64; k + 1];
            // Row stays a spike at k; start it empty.
            row[k] = 0;
            self.rows.push(row);
            self.lo.push(k);
        }
    }

    /// Fresh arrival onto a length-`k` server: the server moves to class
    /// `k + 1` so the board keeps advertising its true length.
    #[inline]
    fn fresh_arrival(&mut self, k: usize) {
        self.sizes[k] -= 1;
        self.rows[k][k] -= 1;
        if k >= 1 {
            self.busy[k] -= 1;
        } else {
            self.total_busy += 1;
        }
        self.ensure_length_class(k + 1);
        self.sizes[k + 1] += 1;
        self.rows[k + 1][k + 1] += 1;
        self.busy[k + 1] += 1;
        self.jobs += 1;
    }

    /// Fresh departure from a uniformly random busy server: class `k`
    /// with probability ∝ `busy[k]`; the server moves to class `k − 1`.
    #[inline]
    fn fresh_departure(&mut self, rng: &mut SimRng) -> usize {
        let r = rng.index(self.total_busy as usize) as u64;
        let k = scan_weights(&self.busy, 1, r);
        self.sizes[k] -= 1;
        self.rows[k][k] -= 1;
        self.busy[k] -= 1;
        self.sizes[k - 1] += 1;
        self.rows[k - 1][k - 1] += 1;
        if k >= 2 {
            self.busy[k - 1] += 1;
        } else {
            self.total_busy -= 1;
        }
        self.jobs -= 1;
        k
    }
}

/// Draws the winning board class for one arrival under periodic
/// information (frozen tables).
#[inline]
fn route(
    router: &Router,
    classes: &Classes,
    n: usize,
    policy_rng: &mut SimRng,
    touched: &mut Vec<(usize, u64)>,
    positions: &mut Vec<u64>,
) -> usize {
    match router {
        Router::Uniform { alias: Some(a) } => a.sample(policy_rng),
        Router::Uniform { alias: None } => {
            let r = policy_rng.index(n) as u64;
            scan_weights(&classes.sizes, 0, r)
        }
        Router::Greedy => 0,
        Router::Subset { d, alias: Some(a) } => {
            // Sequential distinct-uniform-server sampling: propose a class
            // ∝ its size, reject with probability (already drawn)/(size),
            // so accepted classes are ∝ servers not yet drawn — exact
            // without-replacement sampling in O(d) expected alias draws.
            touched.clear();
            let mut best = usize::MAX;
            for _ in 0..*d {
                loop {
                    let j = a.sample(policy_rng);
                    let taken = touched
                        .iter()
                        .find(|&&(c, _)| c == j)
                        .map_or(0, |&(_, m)| m);
                    if taken > 0 && (policy_rng.index(classes.sizes[j] as usize) as u64) < taken {
                        continue; // proposed an already-drawn member
                    }
                    match touched.iter_mut().find(|e| e.0 == j) {
                        Some(entry) => entry.1 += 1,
                        None => touched.push((j, 1)),
                    }
                    best = best.min(j);
                    break;
                }
                if best == 0 {
                    break; // nothing can advertise less than the first class
                }
            }
            best
        }
        Router::Subset { d, alias: None } => {
            // Reference sampler: d distinct uniform positions in [0, n);
            // classes occupy ascending position ranges, so the minimum
            // position belongs to the least-advertised sampled class.
            let min_pos = min_distinct_position(*d, n, policy_rng, positions);
            scan_weights(&classes.sizes, 0, min_pos)
        }
        Router::BasicLi { alias: Some(a), .. } => a.sample(policy_rng),
        Router::BasicLi { alias: None, cum } => {
            let total = cum[cum.len() - 1];
            let r = policy_rng.f64() * total;
            let mut j = 0;
            while j + 1 < cum.len() && cum[j] <= r {
                j += 1;
            }
            j
        }
    }
}

/// Draws the winning class under fresh information (live counts; the
/// winner's class index *is* its queue length).
#[inline]
fn fresh_route(
    policy: PopPolicy,
    classes: &Classes,
    n: usize,
    policy_rng: &mut SimRng,
    positions: &mut Vec<u64>,
) -> usize {
    match policy {
        PopPolicy::Random => {
            let r = policy_rng.index(n) as u64;
            scan_weights(&classes.sizes, 0, r)
        }
        // Fresh Basic LI has horizon 0 ⇒ R = 0 ⇒ the least-loaded
        // indicator, identical to greedy.
        PopPolicy::Greedy | PopPolicy::BasicLi { .. } => {
            let mut k = 0;
            while classes.sizes[k] == 0 {
                k += 1;
            }
            k
        }
        PopPolicy::KSubset { d } => {
            let min_pos = min_distinct_position(d, n, policy_rng, positions);
            scan_weights(&classes.sizes, 0, min_pos)
        }
    }
}

/// Runs one population-mode simulation. Called by [`run_simulation`] when
/// `cfg.engine` selects [`EngineMode::Population`].
///
/// [`run_simulation`]: crate::run_simulation
/// [`EngineMode::Population`]: crate::EngineMode::Population
pub(crate) fn run_population(
    cfg: &SimConfig,
    arrivals: &ArrivalSpec,
    info: &InfoSpec,
    policy: &PolicySpec,
) -> Result<RunResult, SimError> {
    let (pop_policy, pop_info, svc_mean) = validate(cfg, arrivals, info, policy)?;

    let mut master = SimRng::from_seed(cfg.seed);
    let mut arrival_rng = master.fork();
    let mut service_rng = master.fork();
    let mut policy_rng = master.fork();
    let mut model_rng = master.fork();
    // Forked for stream parity with the per-server engine; population mode
    // rejects faults and retries, so these are never drawn.
    let mut fault_rng = master.fork();
    let mut retry_rng = master.fork();
    let _ = (&mut fault_rng, &mut retry_rng);

    let n = cfg.servers;
    let total = cfg.arrivals;
    let warmup = cfg.warmup_jobs();
    let rate = cfg.total_rate();
    let fresh = matches!(pop_info, PopInfo::Fresh);
    let period = match pop_info {
        PopInfo::Fresh => f64::INFINITY,
        PopInfo::Periodic { period } => period,
    };
    // Expected arrivals per phase, the R of the paper's Eqs. 2–4.
    let expected_arrivals = match (pop_info, pop_policy) {
        (PopInfo::Periodic { period }, PopPolicy::BasicLi { lambda_hat }) => {
            lambda_hat * n as f64 * period
        }
        _ => 0.0,
    };

    let mut classes = Classes::all_idle(n as u64);
    let mut scratch = Vec::new();
    let mut hist = Vec::new();
    let mut touched: Vec<(usize, u64)> = Vec::new();
    let mut positions: Vec<u64> = Vec::new();
    let mut router = Router::rebuild(
        pop_policy,
        cfg.population_sampler,
        &classes.boards,
        &classes.sizes,
        expected_arrivals,
        &mut scratch,
    )?;

    let mut response = OnlineStats::new();
    let mut detail = RunDetail::new(n, cfg.sketch_cap);
    let mut t = 0.0f64;
    let mut generated: u64 = 0;
    let mut end_time = 0.0f64;
    let mut busy_integral = 0.0f64;
    let mut next_arrival = if total > 0 {
        arrival_rng.exp(1.0 / rate)
    } else {
        f64::INFINITY
    };
    let mut next_refresh = period;

    while generated < total || classes.jobs > 0 {
        // The departure race: with B busy servers the next completion is
        // Exp(E[S]/B); redrawing it after every event is exact by
        // memorylessness.
        let next_departure = if classes.total_busy > 0 {
            t + service_rng.exp(svc_mean / classes.total_busy as f64)
        } else {
            f64::INFINITY
        };
        // Refreshes only matter while routing decisions remain.
        let refresh_at = if !fresh && generated < total {
            next_refresh
        } else {
            f64::INFINITY
        };

        if refresh_at <= next_arrival && refresh_at <= next_departure {
            busy_integral += classes.total_busy as f64 * (refresh_at - t);
            t = refresh_at;
            classes.refresh(&mut hist);
            router = Router::rebuild(
                pop_policy,
                cfg.population_sampler,
                &classes.boards,
                &classes.sizes,
                expected_arrivals,
                &mut scratch,
            )?;
            next_refresh += period;
            continue;
        }

        if next_arrival <= next_departure {
            busy_integral += classes.total_busy as f64 * (next_arrival - t);
            t = next_arrival;
            let (j, k) = if fresh {
                let k = fresh_route(pop_policy, &classes, n, &mut policy_rng, &mut positions);
                (k, k)
            } else {
                let j = route(
                    &router,
                    &classes,
                    n,
                    &mut policy_rng,
                    &mut touched,
                    &mut positions,
                );
                (j, classes.member_length(j, &mut model_rng))
            };
            // The tagged job's sojourn: k + 1 exponential stages (its own
            // service plus the k ahead of it, the in-service remainder
            // being exponential again). Warm-up jobs draw theirs too so
            // measurement never shifts the service stream.
            let sojourn = erlang(k as u64 + 1, &mut service_rng) * svc_mean;
            if generated >= warmup {
                response.record(sojourn);
                detail.response_histogram.record(sojourn);
                detail.response_sketch.record(sojourn);
            }
            if fresh {
                classes.fresh_arrival(k);
            } else {
                classes.apply_arrival(j, k);
            }
            generated += 1;
            next_arrival = if generated < total {
                t + arrival_rng.exp(1.0 / rate)
            } else {
                f64::INFINITY
            };
        } else {
            busy_integral += classes.total_busy as f64 * (next_departure - t);
            t = next_departure;
            if fresh {
                classes.fresh_departure(&mut model_rng);
            } else {
                classes.apply_departure(&mut model_rng);
            }
            end_time = t;
        }
        detail.jobs_in_system.update(t, classes.jobs as f64);
    }

    debug_assert_eq!(classes.jobs, 0, "drain must empty the system");
    debug_assert_eq!(
        classes.total_busy, 0,
        "no busy server may outlive the drain"
    );

    // Servers are exchangeable, so per-server tallies are reported as the
    // symmetric expectation: completions spread uniformly (fairness 1 by
    // construction) and the busy-time integral split evenly, which keeps
    // the utilization ≈ λ·E[S] validation meaningful.
    let per = generated / n as u64;
    let rem = (generated % n as u64) as usize;
    for (s, slot) in detail.per_server_completed.iter_mut().enumerate() {
        *slot = per + u64::from(s < rem);
    }
    let share = busy_integral / n as f64;
    for slot in detail.per_server_busy.iter_mut() {
        *slot = share;
    }

    Ok(RunResult {
        mean_response: response.mean(),
        response,
        measured_jobs: response.count(),
        generated,
        end_time,
        history_misses: 0,
        faults: FaultStats::default(),
        overload: OverloadStats::default(),
        resilience: ResilienceStats::default(),
        diagnostics: Vec::new(),
        detail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimConfigBuilder;
    use staleload_policies::basic_li_probabilities;

    fn expand(boards: &[u32], sizes: &[u64]) -> Vec<u32> {
        let mut loads = Vec::new();
        for (&b, &c) in boards.iter().zip(sizes) {
            loads.extend(std::iter::repeat_n(b, c as usize));
        }
        loads
    }

    #[test]
    fn water_fill_matches_the_per_server_schedule() {
        let cases: &[(&[u32], &[u64], f64)] = &[
            (&[0], &[10], 25.0),
            (&[0, 4], &[1, 1], 8.0),
            (&[0, 2, 5], &[3, 4, 2], 12.5),
            (&[1, 3, 7, 20], &[5, 1, 9, 2], 0.5),
            (&[0, 1], &[999, 1], 1e6),
            (&[2, 9], &[7, 3], 0.0),
        ];
        let mut probs = Vec::new();
        let mut scratch = Vec::new();
        let mut class_probs = Vec::new();
        for &(boards, sizes, r) in cases {
            let loads = expand(boards, sizes);
            basic_li_probabilities(&loads, r, &mut probs, &mut scratch);
            class_water_fill(boards, sizes, r, &mut class_probs);
            let mut i = 0;
            for (j, &c) in sizes.iter().enumerate() {
                for _ in 0..c {
                    assert!(
                        (probs[i] - class_probs[j]).abs() < 1e-9,
                        "boards {boards:?} sizes {sizes:?} r {r}: server {i} \
                         per-server {} vs class {}",
                        probs[i],
                        class_probs[j]
                    );
                    i += 1;
                }
            }
        }
    }

    #[test]
    fn erlang_matches_its_moments() {
        let mut rng = SimRng::from_seed(42);
        for stages in [1u64, 3, 10] {
            let mut stats = OnlineStats::new();
            for _ in 0..40_000 {
                stats.record(erlang(stages, &mut rng));
            }
            let m = stages as f64;
            assert!(
                (stats.mean() - m).abs() < 0.05 * m,
                "Erlang({stages}) mean {} vs {m}",
                stats.mean()
            );
            assert!(
                (stats.sample_variance() - m).abs() < 0.1 * m,
                "Erlang({stages}) variance {} vs {m}",
                stats.sample_variance()
            );
        }
    }

    fn pop_config(n: usize, lambda: f64, arrivals: u64, seed: u64) -> SimConfig {
        let mut b = SimConfigBuilder::default();
        b.servers(n)
            .lambda(lambda)
            .arrivals(arrivals)
            .engine(crate::EngineMode::Population)
            .seed(seed);
        b.build()
    }

    #[test]
    fn fresh_random_matches_mm1() {
        // Random splitting of a Poisson stream makes every server M/M/1:
        // T = 1/(1−λ) = 5 at λ = 0.8.
        let cfg = pop_config(64, 0.8, 120_000, 11);
        let r = run_population(
            &cfg,
            &ArrivalSpec::Poisson,
            &InfoSpec::Fresh,
            &PolicySpec::Random,
        )
        .expect("population run");
        assert!(
            (r.mean_response - 5.0).abs() < 0.35,
            "M/M/1 at 0.8: {}",
            r.mean_response
        );
        assert_eq!(r.generated, 120_000);
        assert_eq!(r.measured_jobs, 120_000 - cfg.warmup_jobs());
        assert!(r.end_time > 0.0);
    }

    #[test]
    fn stale_random_is_still_mm1() {
        // Oblivious random ignores the board entirely, so staleness must
        // not matter — a sharp internal consistency check for the phase
        // machinery (refreshes, frozen tables, member-length draws).
        let cfg = pop_config(64, 0.8, 120_000, 12);
        let r = run_population(
            &cfg,
            &ArrivalSpec::Poisson,
            &InfoSpec::Periodic { period: 10.0 },
            &PolicySpec::Random,
        )
        .expect("population run");
        assert!(
            (r.mean_response - 5.0).abs() < 0.35,
            "stale random at 0.8: {}",
            r.mean_response
        );
    }

    #[test]
    fn fresh_greedy_beats_fresh_d2_beats_random() {
        let mk = |policy: PolicySpec, seed: u64| {
            let cfg = pop_config(128, 0.9, 150_000, seed);
            run_population(&cfg, &ArrivalSpec::Poisson, &InfoSpec::Fresh, &policy)
                .expect("population run")
                .mean_response
        };
        let random = mk(PolicySpec::Random, 3);
        let d2 = mk(PolicySpec::KSubset { k: 2 }, 3);
        let greedy = mk(PolicySpec::Greedy, 3);
        assert!(
            greedy < d2 && d2 < random,
            "greedy {greedy} < d2 {d2} < random {random}"
        );
        // Analytic anchors: M/M/1 gives 10, the supermarket d = 2 fluid
        // limit ≈ 2.61.
        assert!((random - 10.0).abs() < 1.0, "random {random}");
        assert!((d2 - 2.61).abs() < 0.25, "d2 {d2}");
    }

    #[test]
    fn alias_and_scan_samplers_agree_statistically() {
        let mut means = Vec::new();
        for sampler in [PopulationSampler::Alias, PopulationSampler::Scan] {
            let mut b = SimConfigBuilder::default();
            b.servers(100)
                .lambda(0.9)
                .arrivals(150_000)
                .engine(crate::EngineMode::Population)
                .population_sampler(sampler)
                .seed(5);
            let cfg = b.build();
            let r = run_population(
                &cfg,
                &ArrivalSpec::Poisson,
                &InfoSpec::Periodic { period: 4.0 },
                &PolicySpec::BasicLi { lambda: 0.9 },
            )
            .expect("population run");
            means.push(r.mean_response);
        }
        let rel = (means[0] - means[1]).abs() / means[1];
        assert!(
            rel < 0.06,
            "alias {} vs scan {}: relative gap {rel}",
            means[0],
            means[1]
        );
    }

    #[test]
    fn population_runs_are_deterministic() {
        let cfg = pop_config(32, 0.85, 40_000, 77);
        let run = || {
            run_population(
                &cfg,
                &ArrivalSpec::Poisson,
                &InfoSpec::Periodic { period: 8.0 },
                &PolicySpec::KSubset { k: 3 },
            )
            .expect("population run")
        };
        let a = run();
        let b = run();
        assert_eq!(a.mean_response.to_bits(), b.mean_response.to_bits());
        assert_eq!(a.end_time.to_bits(), b.end_time.to_bits());
        assert_eq!(a.measured_jobs, b.measured_jobs);
    }

    #[test]
    fn unsupported_specs_are_typed_errors() {
        let cfg = pop_config(16, 0.8, 1_000, 1);
        let err = |arr: &ArrivalSpec, info: &InfoSpec, pol: &PolicySpec| match run_population(
            &cfg, arr, info, pol,
        ) {
            Err(SimError::Config(e)) => e.to_string(),
            other => panic!("expected a config error, got {other:?}"),
        };
        assert!(err(
            &ArrivalSpec::PoissonClients { clients: 4 },
            &InfoSpec::Fresh,
            &PolicySpec::Random
        )
        .contains("Poisson"));
        assert!(err(
            &ArrivalSpec::Poisson,
            &InfoSpec::UpdateOnAccess,
            &PolicySpec::Random
        )
        .contains("per-server engine"));
        assert!(err(
            &ArrivalSpec::Poisson,
            &InfoSpec::Fresh,
            &PolicySpec::AggressiveLi { lambda: 0.9 }
        )
        .contains("per-server engine"));
        let mut b = SimConfigBuilder::default();
        b.servers(16).lambda(0.8).arrivals(1_000);
        let mut hetero = b.build();
        hetero.engine = crate::EngineMode::Population;
        hetero.capacities = Some(vec![1.0; 16]);
        assert!(matches!(
            run_population(
                &hetero,
                &ArrivalSpec::Poisson,
                &InfoSpec::Fresh,
                &PolicySpec::Random
            ),
            Err(SimError::Config(_))
        ));
    }

    #[test]
    fn little_and_utilization_hold_in_population_mode() {
        let cfg = pop_config(64, 0.8, 150_000, 9);
        let r = run_population(
            &cfg,
            &ArrivalSpec::Poisson,
            &InfoSpec::Periodic { period: 5.0 },
            &PolicySpec::BasicLi { lambda: 0.8 },
        )
        .expect("population run");
        // Little's law: time-averaged jobs in system ≈ λ·n·E[T].
        let little = 0.8 * 64.0 * r.mean_response;
        let measured = r.detail.mean_jobs_in_system(r.end_time);
        assert!(
            (measured - little).abs() / little < 0.1,
            "Little: {measured} vs {little}"
        );
        // Utilization ≈ λ via the evenly-split busy integral.
        let util: f64 = r.detail.per_server_busy.iter().sum::<f64>() / (64.0 * r.end_time);
        assert!((util - 0.8).abs() < 0.05, "utilization {util}");
        // The sketch and histogram saw exactly the measured jobs.
        assert_eq!(r.detail.response_histogram.count(), r.measured_jobs);
    }
}
