//! Simulation driver and experiment runner for the *Interpreting Stale Load
//! Information* reproduction.
//!
//! This crate glues the substrates together into the paper's experiment
//! (§5): a Poisson (or bursty, per-client) stream of jobs arrives at a bank
//! of FIFO servers; each job is routed by a *selection policy* that only
//! sees the loads through an *information model*; the metric is the mean
//! response time of the jobs arriving after warm-up.
//!
//! * [`SimConfig`] — servers, load, job count, service distribution, seed.
//! * [`run_simulation`] — one seeded run; returns a [`RunResult`].
//! * [`Experiment`] — a (config, info model, policy) triple run over many
//!   seeds, summarized with the paper's statistics (mean ± 90% CI,
//!   quartiles).
//!
//! # Example
//!
//! ```
//! use staleload_core::{ArrivalSpec, Experiment, SimConfig};
//! use staleload_info::InfoSpec;
//! use staleload_policies::PolicySpec;
//!
//! // A small, fast configuration: 8 servers at load 0.9, stale periodic
//! // board (T = 4), Basic LI versus oblivious random.
//! let base = SimConfig::builder()
//!     .servers(8)
//!     .lambda(0.9)
//!     .arrivals(20_000)
//!     .seed(7)
//!     .build();
//! let info = InfoSpec::Periodic { period: 4.0 };
//!
//! let li = Experiment::new(base.clone(), ArrivalSpec::Poisson, info,
//!                          PolicySpec::BasicLi { lambda: 0.9 }, 3).run();
//! let random = Experiment::new(base, ArrivalSpec::Poisson, info,
//!                              PolicySpec::Random, 3).run();
//! assert!(li.summary.mean < random.summary.mean,
//!         "LI should beat oblivious random at moderate staleness");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engine;
mod error;
mod experiment;
mod fault;
mod metrics;
mod population;
mod scratch;

pub use config::{
    ArrivalSpec, ConfigError, EngineMode, PopulationSampler, SimConfig, SimConfigBuilder,
};
pub use engine::{run_simulation, Diagnostic, FaultStats, RunResult};
pub use error::SimError;
pub use experiment::{
    clients_for_mean_age, trial_seed, Experiment, ExperimentResult, TrialFailure, TrialOutcome,
};
pub use fault::{ChurnSpec, CorruptSpec, CrashSpec, FaultSpec, LossSpec, PartitionSpec};
pub use metrics::{jain_fairness, OverloadStats, ResilienceStats, RunDetail, TailSummary};
pub use staleload_workloads::RetrySpec;
