//! Multi-trial experiments with the paper's statistical protocol.

use std::panic::{self, AssertUnwindSafe};

use serde::{Deserialize, Serialize};
use staleload_info::InfoSpec;
use staleload_policies::PolicySpec;
use staleload_stats::{Summary, TailSketch};

use crate::{
    run_simulation, ArrivalSpec, ConfigError, Diagnostic, SimConfig, SimError, TailSummary,
};

/// Derives the seed of trial `trial` from a master seed (SplitMix-style
/// stride keeps nearby trials uncorrelated).
pub fn trial_seed(master: u64, trial: usize) -> u64 {
    master
        ^ (trial as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0x1234_5678_9ABC_DEF1)
}

/// Number of update-on-access clients that makes the mean information age
/// equal `mean_age` (paper §3.2: the age equals a client's inter-request
/// time, so `C = λ·n·T`, at least 1).
pub fn clients_for_mean_age(lambda: f64, servers: usize, mean_age: f64) -> usize {
    ((lambda * servers as f64 * mean_age).round() as usize).max(1)
}

/// One experiment point: a system configuration, an information model, and
/// a policy, run over `trials` independent seeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Experiment {
    /// System configuration (its `seed` is the master seed).
    pub config: SimConfig,
    /// Arrival structure.
    pub arrivals: ArrivalSpec,
    /// Information model.
    pub info: InfoSpec,
    /// Selection policy.
    pub policy: PolicySpec,
    /// Number of independent trials (the paper uses ≥ 10; ≥ 30 for
    /// Bounded-Pareto workloads).
    pub trials: usize,
}

/// A trial that did not produce a result: it either returned a
/// configuration error or panicked outright.
///
/// Panic isolation means one bad trial (a bug tickled by one seed, say)
/// costs that data point, not the whole batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialFailure {
    /// Trial index within the experiment.
    pub trial: usize,
    /// The derived seed the trial ran with (reproduce with this).
    pub seed: u64,
    /// The error or panic message.
    pub error: String,
}

impl std::fmt::Display for TrialFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trial {} (seed {:#018x}) failed: {}",
            self.trial, self.seed, self.error
        )
    }
}

/// The aggregated outcome of an [`Experiment`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Per-trial mean response times (successful trials only).
    pub trial_means: Vec<f64>,
    /// Summary statistics over the trials (mean ± 90% CI, quartiles…).
    pub summary: Summary,
    /// First-class tail latencies over every measured job of every
    /// successful trial, from the per-trial quantile sketches merged in
    /// trial-index order — bit-identical for any worker count or cache
    /// state (ISSUE 8).
    pub tail: TailSummary,
    /// Total history misses across trials (should be 0).
    pub history_misses: u64,
    /// Trials that errored or panicked (skipped in the aggregates).
    pub failures: Vec<TrialFailure>,
    /// Deduplicated per-run warnings (one representative per code).
    pub diagnostics: Vec<Diagnostic>,
}

/// What one trial produced.
///
/// Public so external orchestrators (the sweep runner) can execute
/// [`Experiment::run_trial`] on their own workers and feed the outcomes
/// back through [`Experiment::aggregate`] — staying bit-identical to
/// [`Experiment::try_run`] by construction, because both paths share the
/// same trial and aggregation code.
#[derive(Debug, Clone, PartialEq)]
pub enum TrialOutcome {
    /// The trial completed and produced a mean response time.
    Ok {
        /// Mean response time over the measured window.
        mean: f64,
        /// History-miss count for the trial (should be 0).
        history_misses: u64,
        /// Per-run warnings emitted by the trial.
        diagnostics: Vec<Diagnostic>,
        /// Quantile sketch of the trial's measured response times,
        /// merged across trials by [`Experiment::aggregate`].
        sketch: TailSketch,
    },
    /// The trial returned a config error or panicked.
    Failed(TrialFailure),
}

impl Experiment {
    /// Creates an experiment point. A `trials` of zero is reported by
    /// [`Experiment::try_run`] as a config error, not here.
    pub fn new(
        config: SimConfig,
        arrivals: ArrivalSpec,
        info: InfoSpec,
        policy: PolicySpec,
        trials: usize,
    ) -> Self {
        Self {
            config,
            arrivals,
            info,
            policy,
            trials,
        }
    }

    /// Runs all trials (in parallel when more than one hardware thread is
    /// available) and aggregates the per-trial mean response times.
    ///
    /// Each trial is isolated: a trial that returns a config error or
    /// panics is recorded in [`ExperimentResult::failures`] and excluded
    /// from the aggregates instead of aborting the batch.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuccessfulTrials`] when *every* trial failed
    /// (there is nothing to aggregate).
    pub fn try_run(&self) -> Result<ExperimentResult, SimError> {
        let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
        self.try_run_threaded(threads)
    }

    /// Like [`Experiment::try_run`], but with an explicit worker-thread
    /// count (clamped to at least 1 and at most `trials`).
    ///
    /// The result is independent of `threads`: each trial's seed derives
    /// only from its index, and outcomes are re-ordered by trial index
    /// before aggregation, so `try_run_threaded(1)` and
    /// `try_run_threaded(k)` return identical [`ExperimentResult`]s
    /// (enforced by `tests/parallel_determinism.rs`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuccessfulTrials`] when *every* trial failed.
    pub fn try_run_threaded(&self, threads: usize) -> Result<ExperimentResult, SimError> {
        if self.trials == 0 {
            return Err(ConfigError::new("need at least one trial").into());
        }
        let threads = threads.clamp(1, self.trials);
        let outcomes = if threads <= 1 {
            (0..self.trials)
                .map(|t| self.run_trial(t))
                .collect::<Vec<_>>()
        } else {
            self.run_parallel(threads)
        };
        self.aggregate(outcomes)
    }

    /// Aggregates per-trial outcomes (in trial-index order) into an
    /// [`ExperimentResult`].
    ///
    /// This is the single aggregation path: [`Experiment::try_run`] and
    /// any external runner that produced `outcomes` via
    /// [`Experiment::run_trial`] go through here, so their results cannot
    /// diverge.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuccessfulTrials`] when every outcome is a
    /// failure.
    pub fn aggregate(&self, outcomes: Vec<TrialOutcome>) -> Result<ExperimentResult, SimError> {
        let mut trial_means = Vec::with_capacity(self.trials);
        let mut history_misses = 0;
        let mut failures = Vec::new();
        let mut diagnostics: Vec<Diagnostic> = Vec::new();
        // Merged in trial-index order. The sketch's merge is bit-exact
        // under any association, so this fold matches whatever order the
        // workers actually finished in — but a canonical order keeps the
        // invariant from depending on that property alone.
        let mut merged = TailSketch::new(self.config.sketch_cap.max(1));
        for outcome in outcomes {
            match outcome {
                TrialOutcome::Ok {
                    mean,
                    history_misses: misses,
                    diagnostics: diags,
                    sketch,
                } => {
                    trial_means.push(mean);
                    history_misses += misses;
                    merged.merge(&sketch);
                    for d in diags {
                        if !diagnostics.iter().any(|seen| seen.code == d.code) {
                            diagnostics.push(d);
                        }
                    }
                }
                TrialOutcome::Failed(failure) => failures.push(failure),
            }
        }
        if trial_means.is_empty() {
            return Err(SimError::NoSuccessfulTrials {
                trials: self.trials,
                first_error: failures
                    .first()
                    .map_or_else(|| "no trials ran".to_string(), |f| f.to_string()),
            });
        }
        Ok(ExperimentResult {
            summary: Summary::from_trials(&trial_means),
            tail: TailSummary::from_sketch(&merged),
            trial_means,
            history_misses,
            failures,
            diagnostics,
        })
    }

    /// Like [`Experiment::try_run`], but panics on error — the convenient
    /// entry point for experiment scripts with known-good configurations.
    ///
    /// # Panics
    ///
    /// Panics if every trial failed or the configuration is invalid.
    pub fn run(&self) -> ExperimentResult {
        self.try_run()
            // lint: allow(panic-hygiene) — documented panicking convenience; try_run is the fallible form
            .unwrap_or_else(|e| panic!("experiment failed: {e}"))
    }

    /// Runs one trial (index `trial`) and reports what it produced.
    ///
    /// The trial's seed derives only from the master seed and `trial`, so
    /// trials can run in any order, on any thread, and still produce the
    /// same outcome. Panics inside the simulation are caught and reported
    /// as [`TrialOutcome::Failed`].
    pub fn run_trial(&self, trial: usize) -> TrialOutcome {
        let mut cfg = self.config.clone();
        cfg.seed = trial_seed(self.config.seed, trial);
        let seed = cfg.seed;
        // AssertUnwindSafe: everything captured is either owned by this
        // trial (cfg) or read-only (&self), so no shared state can be
        // observed half-mutated after an unwind.
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            run_simulation(&cfg, &self.arrivals, &self.info, &self.policy)
        }));
        match caught {
            Ok(Ok(r)) => TrialOutcome::Ok {
                mean: r.mean_response,
                history_misses: r.history_misses,
                diagnostics: r.diagnostics,
                sketch: r.detail.response_sketch,
            },
            Ok(Err(e)) => TrialOutcome::Failed(TrialFailure {
                trial,
                seed,
                error: e.to_string(),
            }),
            Err(payload) => {
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                TrialOutcome::Failed(TrialFailure {
                    trial,
                    seed,
                    error: format!("panicked: {message}"),
                })
            }
        }
    }

    fn run_parallel(&self, threads: usize) -> Vec<TrialOutcome> {
        // Each worker claims trial indices from a shared atomic counter
        // and collects outcomes into its own vector; the vectors are
        // merged after the scope. No lock is touched on the hot path.
        let next = std::sync::atomic::AtomicUsize::new(0);
        let per_thread: Vec<Vec<(usize, TrialOutcome)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let next = &next;
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            let trial = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if trial >= self.trials {
                                break;
                            }
                            local.push((trial, self.run_trial(trial)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_default())
                .collect()
        });
        let mut slots: Vec<Option<TrialOutcome>> = (0..self.trials).map(|_| None).collect();
        for (trial, out) in per_thread.into_iter().flatten() {
            slots[trial] = Some(out);
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(trial, slot)| {
                slot.unwrap_or_else(|| {
                    // A worker thread died before storing its outcome
                    // (catch_unwind should make this unreachable).
                    TrialOutcome::Failed(TrialFailure {
                        trial,
                        seed: trial_seed(self.config.seed, trial),
                        error: "trial produced no outcome".to_string(),
                    })
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultSpec;

    fn quick_experiment(policy: PolicySpec, trials: usize) -> Experiment {
        let cfg = SimConfig::builder()
            .servers(8)
            .lambda(0.5)
            .arrivals(15_000)
            .seed(21)
            .build();
        Experiment::new(
            cfg,
            ArrivalSpec::Poisson,
            InfoSpec::Periodic { period: 2.0 },
            policy,
            trials,
        )
    }

    #[test]
    fn zero_trials_is_a_config_error() {
        let err = quick_experiment(PolicySpec::Random, 0)
            .try_run()
            .unwrap_err();
        assert!(err.to_string().contains("at least one trial"), "{err}");
    }

    #[test]
    fn experiment_is_deterministic() {
        let e = quick_experiment(PolicySpec::BasicLi { lambda: 0.5 }, 3);
        let a = e.run();
        let b = e.run();
        assert_eq!(a.trial_means, b.trial_means);
    }

    #[test]
    fn trials_use_distinct_seeds() {
        let e = quick_experiment(PolicySpec::Random, 4);
        let r = e.run();
        let mut means = r.trial_means.clone();
        means.sort_by(|a, b| a.partial_cmp(b).unwrap());
        means.dedup();
        assert_eq!(
            means.len(),
            4,
            "all trial means distinct: {:?}",
            r.trial_means
        );
        assert_eq!(r.summary.trials, 4);
        assert!(r.failures.is_empty());
    }

    #[test]
    fn trial_seed_spreads() {
        let s: Vec<u64> = (0..16).map(|t| trial_seed(42, t)).collect();
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 16);
    }

    #[test]
    fn clients_for_mean_age_formula() {
        // λ = 0.9, n = 100, T = 10 ⇒ 900 clients.
        assert_eq!(clients_for_mean_age(0.9, 100, 10.0), 900);
        // Tiny T still yields at least one client.
        assert_eq!(clients_for_mean_age(0.9, 100, 0.001), 1);
    }

    #[test]
    fn summary_reflects_trials() {
        let e = quick_experiment(PolicySpec::Random, 5);
        let r = e.run();
        assert_eq!(r.trial_means.len(), 5);
        let mean = r.trial_means.iter().sum::<f64>() / 5.0;
        assert!((r.summary.mean - mean).abs() < 1e-12);
        assert_eq!(r.history_misses, 0);
    }

    #[test]
    fn invalid_config_fails_every_trial_with_typed_error() {
        let e = quick_experiment(PolicySpec::KSubset { k: 0 }, 3);
        match e.try_run() {
            Err(SimError::NoSuccessfulTrials {
                trials,
                first_error,
            }) => {
                assert_eq!(trials, 3);
                assert!(first_error.contains("subset size"), "{first_error}");
            }
            other => panic!("expected NoSuccessfulTrials, got {other:?}"),
        }
    }

    #[test]
    fn faulty_trials_still_aggregate() {
        let mut e = quick_experiment(PolicySpec::BasicLi { lambda: 0.5 }, 3);
        e.config.faults = FaultSpec::crash(300.0, 30.0);
        let r = e.try_run().expect("crash faults are a valid configuration");
        assert_eq!(r.trial_means.len(), 3);
        assert!(r.failures.is_empty());
    }

    #[test]
    fn one_panicking_trial_does_not_abort_the_batch() {
        // SITA boundaries pass validation (positive, ascending) but with 3
        // boundaries SITA needs 4 servers — selecting on an 8-server
        // cluster is fine, but 9 boundaries on 8 servers panics in
        // select(). Craft a policy that validates yet panics at runtime.
        let cfg = SimConfig::builder()
            .servers(2)
            .lambda(0.5)
            .arrivals(500)
            .seed(7)
            .build();
        // 4 boundaries → 5 virtual servers, but the cluster has 2: SITA
        // returns indices ≥ 2 and the cluster panics on out-of-range.
        let e = Experiment::new(
            cfg,
            ArrivalSpec::Poisson,
            InfoSpec::Fresh,
            PolicySpec::Sita {
                boundaries: vec![0.5, 1.0, 2.0, 4.0],
            },
            2,
        );
        match e.try_run() {
            Err(SimError::NoSuccessfulTrials {
                trials,
                first_error,
            }) => {
                // Every trial hits the same panic — the point is the panic
                // was *caught* and reported, not propagated.
                assert_eq!(trials, 2);
                assert!(first_error.contains("panicked"), "{first_error}");
            }
            Ok(r) => panic!(
                "expected failures, got {} clean trials",
                r.trial_means.len()
            ),
            Err(other) => panic!("unexpected error {other}"),
        }
    }
}
