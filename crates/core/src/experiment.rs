//! Multi-trial experiments with the paper's statistical protocol.

use serde::{Deserialize, Serialize};
use staleload_info::InfoSpec;
use staleload_policies::PolicySpec;
use staleload_stats::Summary;

use crate::{run_simulation, ArrivalSpec, SimConfig};

/// Derives the seed of trial `trial` from a master seed (SplitMix-style
/// stride keeps nearby trials uncorrelated).
pub fn trial_seed(master: u64, trial: usize) -> u64 {
    master ^ (trial as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0x1234_5678_9ABC_DEF1)
}

/// Number of update-on-access clients that makes the mean information age
/// equal `mean_age` (paper §3.2: the age equals a client's inter-request
/// time, so `C = λ·n·T`, at least 1).
pub fn clients_for_mean_age(lambda: f64, servers: usize, mean_age: f64) -> usize {
    ((lambda * servers as f64 * mean_age).round() as usize).max(1)
}

/// One experiment point: a system configuration, an information model, and
/// a policy, run over `trials` independent seeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Experiment {
    /// System configuration (its `seed` is the master seed).
    pub config: SimConfig,
    /// Arrival structure.
    pub arrivals: ArrivalSpec,
    /// Information model.
    pub info: InfoSpec,
    /// Selection policy.
    pub policy: PolicySpec,
    /// Number of independent trials (the paper uses ≥ 10; ≥ 30 for
    /// Bounded-Pareto workloads).
    pub trials: usize,
}

/// The aggregated outcome of an [`Experiment`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Per-trial mean response times.
    pub trial_means: Vec<f64>,
    /// Summary statistics over the trials (mean ± 90% CI, quartiles…).
    pub summary: Summary,
    /// Total history misses across trials (should be 0).
    pub history_misses: u64,
}

impl Experiment {
    /// Creates an experiment point.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0`.
    pub fn new(
        config: SimConfig,
        arrivals: ArrivalSpec,
        info: InfoSpec,
        policy: PolicySpec,
        trials: usize,
    ) -> Self {
        assert!(trials > 0, "need at least one trial");
        Self { config, arrivals, info, policy, trials }
    }

    /// Runs all trials (in parallel when more than one hardware thread is
    /// available) and aggregates the per-trial mean response times.
    pub fn run(&self) -> ExperimentResult {
        let threads = std::thread::available_parallelism().map_or(1, |p| p.get()).min(self.trials);
        let results = if threads <= 1 {
            (0..self.trials).map(|t| self.run_trial(t)).collect::<Vec<_>>()
        } else {
            self.run_parallel(threads)
        };
        let trial_means: Vec<f64> = results.iter().map(|r| r.0).collect();
        let history_misses = results.iter().map(|r| r.1).sum();
        ExperimentResult {
            summary: Summary::from_trials(&trial_means),
            trial_means,
            history_misses,
        }
    }

    fn run_trial(&self, trial: usize) -> (f64, u64) {
        let mut cfg = self.config.clone();
        cfg.seed = trial_seed(self.config.seed, trial);
        let r = run_simulation(&cfg, &self.arrivals, &self.info, &self.policy);
        (r.mean_response, r.history_misses)
    }

    fn run_parallel(&self, threads: usize) -> Vec<(f64, u64)> {
        let (tx, rx) = crossbeam::channel::unbounded::<usize>();
        for t in 0..self.trials {
            tx.send(t).expect("channel is open");
        }
        drop(tx);
        let mut results = vec![(0.0, 0u64); self.trials];
        let collected: std::sync::Mutex<Vec<(usize, (f64, u64))>> =
            std::sync::Mutex::new(Vec::with_capacity(self.trials));
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let rx = rx.clone();
                let collected = &collected;
                scope.spawn(move || {
                    while let Ok(trial) = rx.recv() {
                        let out = self.run_trial(trial);
                        collected.lock().expect("no poisoned lock").push((trial, out));
                    }
                });
            }
        });
        for (trial, out) in collected.into_inner().expect("no poisoned lock") {
            results[trial] = out;
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_experiment(policy: PolicySpec, trials: usize) -> Experiment {
        let cfg = SimConfig::builder().servers(8).lambda(0.5).arrivals(15_000).seed(21).build();
        Experiment::new(cfg, ArrivalSpec::Poisson, InfoSpec::Periodic { period: 2.0 }, policy, trials)
    }

    #[test]
    fn experiment_is_deterministic() {
        let e = quick_experiment(PolicySpec::BasicLi { lambda: 0.5 }, 3);
        let a = e.run();
        let b = e.run();
        assert_eq!(a.trial_means, b.trial_means);
    }

    #[test]
    fn trials_use_distinct_seeds() {
        let e = quick_experiment(PolicySpec::Random, 4);
        let r = e.run();
        let mut means = r.trial_means.clone();
        means.sort_by(|a, b| a.partial_cmp(b).unwrap());
        means.dedup();
        assert_eq!(means.len(), 4, "all trial means distinct: {:?}", r.trial_means);
        assert_eq!(r.summary.trials, 4);
    }

    #[test]
    fn trial_seed_spreads() {
        let s: Vec<u64> = (0..16).map(|t| trial_seed(42, t)).collect();
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 16);
    }

    #[test]
    fn clients_for_mean_age_formula() {
        // λ = 0.9, n = 100, T = 10 ⇒ 900 clients.
        assert_eq!(clients_for_mean_age(0.9, 100, 10.0), 900);
        // Tiny T still yields at least one client.
        assert_eq!(clients_for_mean_age(0.9, 100, 0.001), 1);
    }

    #[test]
    fn summary_reflects_trials() {
        let e = quick_experiment(PolicySpec::Random, 5);
        let r = e.run();
        assert_eq!(r.trial_means.len(), 5);
        let mean = r.trial_means.iter().sum::<f64>() / 5.0;
        assert!((r.summary.mean - mean).abs() < 1e-12);
        assert_eq!(r.history_misses, 0);
    }
}
