//! Fault-injection specifications: server crashes and lossy update channels.
//!
//! The paper's model assumes servers never fail and every load report
//! reaches the information system. [`FaultSpec`] relaxes both assumptions
//! so the interpretation algorithms can be stress-tested:
//!
//! * **Crashes** — each server independently alternates between up and
//!   down periods with exponential mean time between failures (MTBF) and
//!   mean time to repair (MTTR). A down server stops serving; its queued
//!   jobs either stall until recovery (default) or are re-dispatched to
//!   surviving servers at the crash instant.
//! * **Losses** — board refreshes are dropped or delayed per entry (see
//!   [`LossSpec`]).
//!
//! Fault randomness comes from its own forked RNG stream, drawn *after*
//! the four streams the fault-free engine forks, so
//! [`FaultSpec::none`] reproduces fault-free trajectories bit for bit.
//!
//! The textual grammar (used by `--faults` on the CLI and round-tripped by
//! `Display`/`FromStr`) is a comma-separated list of clauses:
//!
//! ```text
//! none
//! crash:<mtbf>:<mttr>[:redispatch]
//! drop:<p>
//! delay:<mean>
//! ```

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};
pub use staleload_info::LossSpec;

use crate::ConfigError;

/// Exponential crash/recovery process parameters for every server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrashSpec {
    /// Mean up time before a crash (exponential).
    pub mtbf: f64,
    /// Mean down time before recovery (exponential).
    pub mttr: f64,
    /// If `true`, jobs queued at a crashing server are immediately
    /// re-dispatched to a surviving server (losing any partial service);
    /// if `false` (default), they stall in place until the server
    /// recovers.
    pub redispatch: bool,
}

/// A complete fault-injection configuration; [`FaultSpec::none`] disables
/// every fault and is the default.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Server crash/recovery process, if any.
    pub crash: Option<CrashSpec>,
    /// Lossy/delayed update channel, if any.
    pub loss: Option<LossSpec>,
}

impl FaultSpec {
    /// No faults: the engine behaves exactly like the fault-free
    /// simulator (bit-identical trajectories for equal seeds).
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether any fault is active.
    pub fn is_none(&self) -> bool {
        self.crash.is_none() && self.loss.is_none_or(|l| l.is_noop())
    }

    /// A pure crash/recovery fault (stall mode).
    pub fn crash(mtbf: f64, mttr: f64) -> Self {
        Self {
            crash: Some(CrashSpec {
                mtbf,
                mttr,
                redispatch: false,
            }),
            loss: None,
        }
    }

    /// A pure drop-loss fault.
    pub fn drop(p: f64) -> Self {
        Self {
            crash: None,
            loss: Some(LossSpec::drop(p)),
        }
    }

    /// Checks every parameter is in range.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] naming the out-of-range field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if let Some(crash) = &self.crash {
            if !(crash.mtbf.is_finite() && crash.mtbf > 0.0) {
                return Err(ConfigError::new(format!(
                    "crash MTBF must be finite and positive, got {}",
                    crash.mtbf
                )));
            }
            if !(crash.mttr.is_finite() && crash.mttr > 0.0) {
                return Err(ConfigError::new(format!(
                    "crash MTTR must be finite and positive, got {}",
                    crash.mttr
                )));
            }
        }
        if let Some(loss) = &self.loss {
            loss.validate().map_err(ConfigError::new)?;
        }
        Ok(())
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.crash.is_none() && self.loss.is_none() {
            return write!(f, "none");
        }
        let mut sep = "";
        if let Some(c) = &self.crash {
            let mode = if c.redispatch { ":redispatch" } else { "" };
            write!(f, "crash:{}:{}{}", c.mtbf, c.mttr, mode)?;
            sep = ",";
        }
        if let Some(l) = &self.loss {
            write!(f, "{sep}drop:{}", l.drop_prob)?;
            if l.delay_mean > 0.0 {
                write!(f, ",delay:{}", l.delay_mean)?;
            }
        }
        Ok(())
    }
}

fn parse_f64(v: &str, what: &str) -> Result<f64, ConfigError> {
    v.parse()
        .map_err(|_| ConfigError::new(format!("bad {what} '{v}' in fault spec")))
}

impl FromStr for FaultSpec {
    type Err = ConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() || s == "none" {
            return Ok(Self::none());
        }
        let mut spec = Self::none();
        let mut delay: Option<f64> = None;
        for clause in s.split(',') {
            let mut parts = clause.trim().split(':');
            let head = parts.next().unwrap_or("");
            let rest: Vec<&str> = parts.collect();
            match (head, rest.as_slice()) {
                ("crash", [mtbf, mttr]) | ("crash", [mtbf, mttr, "redispatch"]) => {
                    if spec.crash.is_some() {
                        return Err(ConfigError::new("duplicate crash clause in fault spec"));
                    }
                    spec.crash = Some(CrashSpec {
                        mtbf: parse_f64(mtbf, "MTBF")?,
                        mttr: parse_f64(mttr, "MTTR")?,
                        redispatch: rest.len() == 3,
                    });
                }
                ("drop", [p]) => {
                    if spec.loss.is_some() {
                        return Err(ConfigError::new("duplicate drop clause in fault spec"));
                    }
                    spec.loss = Some(LossSpec::drop(parse_f64(p, "drop probability")?));
                }
                ("delay", [mean]) => {
                    if delay.is_some() {
                        return Err(ConfigError::new("duplicate delay clause in fault spec"));
                    }
                    delay = Some(parse_f64(mean, "delay mean")?);
                }
                _ => {
                    return Err(ConfigError::new(format!(
                        "bad fault clause '{}' (expected none, crash:<mtbf>:<mttr>[:redispatch], \
                         drop:<p>, delay:<mean>)",
                        clause.trim()
                    )));
                }
            }
        }
        if let Some(mean) = delay {
            let loss = spec.loss.get_or_insert(LossSpec::default());
            loss.delay_mean = mean;
        }
        spec.validate()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_round_trips() {
        let none = FaultSpec::none();
        assert!(none.is_none());
        assert_eq!(none.to_string(), "none");
        assert_eq!("none".parse::<FaultSpec>().unwrap(), none);
        assert_eq!("".parse::<FaultSpec>().unwrap(), none);
    }

    #[test]
    fn grammar_round_trips() {
        for s in [
            "crash:1000:50",
            "crash:1000:50:redispatch",
            "drop:0.5",
            "crash:1000:50,drop:0.25",
            "drop:0.25,delay:2",
            "crash:500:10:redispatch,drop:0.1,delay:0.5",
        ] {
            let spec: FaultSpec = s.parse().unwrap();
            assert_eq!(spec.to_string(), s, "display must round-trip '{s}'");
            assert_eq!(spec.to_string().parse::<FaultSpec>().unwrap(), spec);
        }
    }

    #[test]
    fn delay_alone_parses_as_lossless_delay() {
        let spec: FaultSpec = "delay:3".parse().unwrap();
        let loss = spec.loss.unwrap();
        assert_eq!(loss.drop_prob, 0.0);
        assert_eq!(loss.delay_mean, 3.0);
        // Display emits the canonical drop:0,delay:3 form.
        assert_eq!(spec.to_string().parse::<FaultSpec>().unwrap(), spec);
    }

    #[test]
    fn bad_specs_are_rejected() {
        for s in [
            "crash",
            "crash:10",
            "crash:10:5:now",
            "drop",
            "drop:1.5",
            "drop:-0.1",
            "crash:0:5",
            "crash:10:0",
            "crash:inf:5",
            "crash:nan:1",
            "crash:-5:2",
            "crash:10:nan",
            "drop:nan",
            "delay:-1",
            "delay:inf",
            "delay:nan",
            "warp",
            "drop:0.1,drop:0.2",
            "crash:10:5,crash:20:5",
            "delay:1,delay:2",
        ] {
            assert!(s.parse::<FaultSpec>().is_err(), "'{s}' should be rejected");
        }
    }

    #[test]
    fn rejection_messages_name_the_field() {
        let err = |s: &str| s.parse::<FaultSpec>().unwrap_err().to_string();
        assert!(
            err("crash:nan:1").contains("MTBF"),
            "{}",
            err("crash:nan:1")
        );
        assert!(
            err("crash:10:-1").contains("MTTR"),
            "{}",
            err("crash:10:-1")
        );
        assert!(err("drop:1.5").contains("drop"), "{}", err("drop:1.5"));
        assert!(err("delay:-1").contains("delay"), "{}", err("delay:-1"));
        assert!(err("warp").contains("bad fault clause"), "{}", err("warp"));
        assert!(
            err("crash:10:5,crash:20:5").contains("duplicate"),
            "{}",
            err("crash:10:5,crash:20:5")
        );
    }

    #[test]
    fn validate_checks_ranges() {
        assert!(FaultSpec::crash(100.0, 5.0).validate().is_ok());
        assert!(FaultSpec::crash(-1.0, 5.0).validate().is_err());
        assert!(FaultSpec::drop(0.5).validate().is_ok());
        assert!(FaultSpec::drop(2.0).validate().is_err());
    }
}
