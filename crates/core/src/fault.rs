//! Fault-injection specifications: server crashes and lossy update channels.
//!
//! The paper's model assumes servers never fail and every load report
//! reaches the information system. [`FaultSpec`] relaxes both assumptions
//! so the interpretation algorithms can be stress-tested:
//!
//! * **Crashes** — each server independently alternates between up and
//!   down periods with exponential mean time between failures (MTBF) and
//!   mean time to repair (MTTR). A down server stops serving; its queued
//!   jobs either stall until recovery (default) or are re-dispatched to
//!   surviving servers at the crash instant.
//! * **Losses** — board refreshes are dropped or delayed per entry (see
//!   [`LossSpec`]).
//! * **Partitions** — a subset of servers becomes invisible to the
//!   bulletin board for an interval, then heals (see [`PartitionSpec`]).
//!   The servers keep serving; only their reports are lost.
//! * **Churn** — servers leave and rejoin the cluster mid-run (see
//!   [`ChurnSpec`]). A departing server evicts its whole queue for
//!   re-dispatch; a rejoining one comes back cold and warms up as the
//!   board's natural refresh cycle re-learns it.
//! * **Corruption** — a fraction of load reports are garbled in flight:
//!   zeroed, stuck, or scaled (see [`CorruptSpec`]).
//!
//! Fault randomness comes from its own forked RNG stream, drawn *after*
//! the four streams the fault-free engine forks, so
//! [`FaultSpec::none`] reproduces fault-free trajectories bit for bit.
//!
//! The textual grammar (used by `--faults` on the CLI and round-tripped by
//! `Display`/`FromStr`) is a comma-separated list of clauses:
//!
//! ```text
//! none
//! crash:<mtbf>:<mttr>[:redispatch]
//! drop:<p>
//! delay:<mean>
//! partition:<mtbf>:<duration>:<fraction>[:correlated]
//! churn:<mtbf>:<downtime>
//! corrupt:<fraction>
//! ```

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};
pub use staleload_info::{CorruptSpec, LossSpec};

use crate::ConfigError;

/// Exponential crash/recovery process parameters for every server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrashSpec {
    /// Mean up time before a crash (exponential).
    pub mtbf: f64,
    /// Mean down time before recovery (exponential).
    pub mttr: f64,
    /// If `true`, jobs queued at a crashing server are immediately
    /// re-dispatched to a surviving server (losing any partial service);
    /// if `false` (default), they stall in place until the server
    /// recovers.
    pub redispatch: bool,
}

/// A recurring view-partition process: every so often a subset of servers
/// becomes invisible to the bulletin board for an interval, then heals.
///
/// Partitions are pure information-plane faults — the partitioned servers
/// keep serving jobs; only their load reports stop reaching the board, so
/// their entries decay in place exactly like a crashed server's. Intervals
/// never overlap: the next partition is drawn after the current one heals.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionSpec {
    /// Mean healthy time between partitions (exponential).
    pub mtbf: f64,
    /// Fixed length of each partition interval.
    pub duration: f64,
    /// Fraction of the cluster partitioned away each time, in `(0, 1]`
    /// (at least one server is always taken).
    pub fraction: f64,
    /// If `true` the partitioned subset is a *contiguous* block of server
    /// ids (a rack or zone losing its uplink); if `false` (default) a
    /// uniform random subset.
    pub correlated: bool,
}

/// A membership-churn process: each server independently alternates
/// between member and departed states, like [`CrashSpec`] but with
/// *eviction* semantics — a departing server's whole queue (including the
/// in-service job, which loses its partial service) is re-dispatched to
/// surviving servers, and a rejoining server comes back empty and cold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnSpec {
    /// Mean membership time before a server leaves (exponential).
    pub mtbf: f64,
    /// Mean departed time before it rejoins (exponential). Must be
    /// shorter than `mtbf`, otherwise churn drains the cluster.
    pub downtime: f64,
}

/// A complete fault-injection configuration; [`FaultSpec::none`] disables
/// every fault and is the default.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Server crash/recovery process, if any.
    pub crash: Option<CrashSpec>,
    /// Lossy/delayed update channel, if any.
    pub loss: Option<LossSpec>,
    /// Recurring view partitions, if any.
    pub partition: Option<PartitionSpec>,
    /// Membership churn, if any.
    pub churn: Option<ChurnSpec>,
    /// Report corruption, if any.
    pub corrupt: Option<CorruptSpec>,
}

impl FaultSpec {
    /// No faults: the engine behaves exactly like the fault-free
    /// simulator (bit-identical trajectories for equal seeds).
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether any fault is active.
    pub fn is_none(&self) -> bool {
        self.crash.is_none()
            && self.loss.is_none_or(|l| l.is_noop())
            && self.partition.is_none()
            && self.churn.is_none()
            && self.corrupt.is_none_or(|c| c.is_noop())
    }

    /// A pure crash/recovery fault (stall mode).
    pub fn crash(mtbf: f64, mttr: f64) -> Self {
        Self {
            crash: Some(CrashSpec {
                mtbf,
                mttr,
                redispatch: false,
            }),
            ..Self::none()
        }
    }

    /// A pure drop-loss fault.
    pub fn drop(p: f64) -> Self {
        Self {
            loss: Some(LossSpec::drop(p)),
            ..Self::none()
        }
    }

    /// A pure uncorrelated view-partition fault.
    pub fn partition(mtbf: f64, duration: f64, fraction: f64) -> Self {
        Self {
            partition: Some(PartitionSpec {
                mtbf,
                duration,
                fraction,
                correlated: false,
            }),
            ..Self::none()
        }
    }

    /// A pure membership-churn fault.
    pub fn churn(mtbf: f64, downtime: f64) -> Self {
        Self {
            churn: Some(ChurnSpec { mtbf, downtime }),
            ..Self::none()
        }
    }

    /// A pure report-corruption fault.
    pub fn corrupt(fraction: f64) -> Self {
        Self {
            corrupt: Some(CorruptSpec { fraction }),
            ..Self::none()
        }
    }

    /// Checks every parameter is in range.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] naming the out-of-range field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if let Some(crash) = &self.crash {
            if !(crash.mtbf.is_finite() && crash.mtbf > 0.0) {
                return Err(ConfigError::new(format!(
                    "crash MTBF must be finite and positive, got {}",
                    crash.mtbf
                )));
            }
            if !(crash.mttr.is_finite() && crash.mttr > 0.0) {
                return Err(ConfigError::new(format!(
                    "crash MTTR must be finite and positive, got {}",
                    crash.mttr
                )));
            }
        }
        if let Some(loss) = &self.loss {
            loss.validate().map_err(ConfigError::new)?;
        }
        if let Some(p) = &self.partition {
            if !(p.mtbf.is_finite() && p.mtbf > 0.0) {
                return Err(ConfigError::new(format!(
                    "partition MTBF must be finite and positive, got {}",
                    p.mtbf
                )));
            }
            if !(p.duration.is_finite() && p.duration > 0.0) {
                return Err(ConfigError::new(format!(
                    "partition duration must be finite and positive (a zero-length \
                     partition interval is degenerate), got {}",
                    p.duration
                )));
            }
            if !(p.fraction.is_finite() && p.fraction > 0.0 && p.fraction <= 1.0) {
                return Err(ConfigError::new(format!(
                    "partition fraction must be in (0, 1], got {}",
                    p.fraction
                )));
            }
        }
        if let Some(c) = &self.churn {
            if !(c.mtbf.is_finite() && c.mtbf > 0.0) {
                return Err(ConfigError::new(format!(
                    "churn MTBF must be finite and positive, got {}",
                    c.mtbf
                )));
            }
            if !(c.downtime.is_finite() && c.downtime > 0.0) {
                return Err(ConfigError::new(format!(
                    "churn downtime must be finite and positive, got {}",
                    c.downtime
                )));
            }
            if c.downtime >= c.mtbf {
                return Err(ConfigError::new(format!(
                    "churn downtime ({}) must be shorter than the membership MTBF ({}): \
                     that churn rate would empty the cluster",
                    c.downtime, c.mtbf
                )));
            }
            if self.crash.is_some() {
                return Err(ConfigError::new(
                    "churn and crash faults cannot be combined (churn subsumes crash: \
                     a departing server already stops serving and evicts its queue)",
                ));
            }
        }
        if let Some(c) = &self.corrupt {
            c.validate().map_err(ConfigError::new)?;
        }
        Ok(())
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.crash.is_none()
            && self.loss.is_none()
            && self.partition.is_none()
            && self.churn.is_none()
            && self.corrupt.is_none()
        {
            return write!(f, "none");
        }
        let mut sep = "";
        if let Some(c) = &self.crash {
            let mode = if c.redispatch { ":redispatch" } else { "" };
            write!(f, "crash:{}:{}{}", c.mtbf, c.mttr, mode)?;
            sep = ",";
        }
        if let Some(l) = &self.loss {
            write!(f, "{sep}drop:{}", l.drop_prob)?;
            if l.delay_mean > 0.0 {
                write!(f, ",delay:{}", l.delay_mean)?;
            }
            sep = ",";
        }
        if let Some(p) = &self.partition {
            let mode = if p.correlated { ":correlated" } else { "" };
            write!(
                f,
                "{sep}partition:{}:{}:{}{}",
                p.mtbf, p.duration, p.fraction, mode
            )?;
            sep = ",";
        }
        if let Some(c) = &self.churn {
            write!(f, "{sep}churn:{}:{}", c.mtbf, c.downtime)?;
            sep = ",";
        }
        if let Some(c) = &self.corrupt {
            write!(f, "{sep}corrupt:{}", c.fraction)?;
        }
        Ok(())
    }
}

fn parse_f64(v: &str, what: &str) -> Result<f64, ConfigError> {
    v.parse()
        .map_err(|_| ConfigError::new(format!("bad {what} '{v}' in fault spec")))
}

impl FromStr for FaultSpec {
    type Err = ConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() || s == "none" {
            return Ok(Self::none());
        }
        let mut spec = Self::none();
        let mut delay: Option<f64> = None;
        for clause in s.split(',') {
            let mut parts = clause.trim().split(':');
            let head = parts.next().unwrap_or("");
            let rest: Vec<&str> = parts.collect();
            match (head, rest.as_slice()) {
                ("crash", [mtbf, mttr]) | ("crash", [mtbf, mttr, "redispatch"]) => {
                    if spec.crash.is_some() {
                        return Err(ConfigError::new("duplicate crash clause in fault spec"));
                    }
                    spec.crash = Some(CrashSpec {
                        mtbf: parse_f64(mtbf, "MTBF")?,
                        mttr: parse_f64(mttr, "MTTR")?,
                        redispatch: rest.len() == 3,
                    });
                }
                ("drop", [p]) => {
                    if spec.loss.is_some() {
                        return Err(ConfigError::new("duplicate drop clause in fault spec"));
                    }
                    spec.loss = Some(LossSpec::drop(parse_f64(p, "drop probability")?));
                }
                ("delay", [mean]) => {
                    if delay.is_some() {
                        return Err(ConfigError::new("duplicate delay clause in fault spec"));
                    }
                    delay = Some(parse_f64(mean, "delay mean")?);
                }
                ("partition", [mtbf, duration, fraction])
                | ("partition", [mtbf, duration, fraction, "correlated"]) => {
                    if spec.partition.is_some() {
                        return Err(ConfigError::new("duplicate partition clause in fault spec"));
                    }
                    spec.partition = Some(PartitionSpec {
                        mtbf: parse_f64(mtbf, "partition MTBF")?,
                        duration: parse_f64(duration, "partition duration")?,
                        fraction: parse_f64(fraction, "partition fraction")?,
                        correlated: rest.len() == 4,
                    });
                }
                ("churn", [mtbf, downtime]) => {
                    if spec.churn.is_some() {
                        return Err(ConfigError::new("duplicate churn clause in fault spec"));
                    }
                    spec.churn = Some(ChurnSpec {
                        mtbf: parse_f64(mtbf, "churn MTBF")?,
                        downtime: parse_f64(downtime, "churn downtime")?,
                    });
                }
                ("corrupt", [fraction]) => {
                    if spec.corrupt.is_some() {
                        return Err(ConfigError::new("duplicate corrupt clause in fault spec"));
                    }
                    spec.corrupt = Some(CorruptSpec {
                        fraction: parse_f64(fraction, "corrupt fraction")?,
                    });
                }
                _ => {
                    return Err(ConfigError::new(format!(
                        "bad fault clause '{}' (expected none, crash:<mtbf>:<mttr>[:redispatch], \
                         drop:<p>, delay:<mean>, \
                         partition:<mtbf>:<duration>:<fraction>[:correlated], \
                         churn:<mtbf>:<downtime>, corrupt:<fraction>)",
                        clause.trim()
                    )));
                }
            }
        }
        if let Some(mean) = delay {
            let loss = spec.loss.get_or_insert(LossSpec::default());
            loss.delay_mean = mean;
        }
        spec.validate()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_round_trips() {
        let none = FaultSpec::none();
        assert!(none.is_none());
        assert_eq!(none.to_string(), "none");
        assert_eq!("none".parse::<FaultSpec>().unwrap(), none);
        assert_eq!("".parse::<FaultSpec>().unwrap(), none);
    }

    #[test]
    fn grammar_round_trips() {
        for s in [
            "crash:1000:50",
            "crash:1000:50:redispatch",
            "drop:0.5",
            "crash:1000:50,drop:0.25",
            "drop:0.25,delay:2",
            "crash:500:10:redispatch,drop:0.1,delay:0.5",
            "partition:100:20:0.25",
            "partition:100:20:0.25:correlated",
            "churn:200:20",
            "corrupt:0.1",
            "drop:0.5,partition:50:10:0.5,churn:100:5,corrupt:0.25",
        ] {
            let spec: FaultSpec = s.parse().unwrap();
            assert_eq!(spec.to_string(), s, "display must round-trip '{s}'");
            assert_eq!(spec.to_string().parse::<FaultSpec>().unwrap(), spec);
        }
    }

    #[test]
    fn delay_alone_parses_as_lossless_delay() {
        let spec: FaultSpec = "delay:3".parse().unwrap();
        let loss = spec.loss.unwrap();
        assert_eq!(loss.drop_prob, 0.0);
        assert_eq!(loss.delay_mean, 3.0);
        // Display emits the canonical drop:0,delay:3 form.
        assert_eq!(spec.to_string().parse::<FaultSpec>().unwrap(), spec);
    }

    #[test]
    fn bad_specs_are_rejected() {
        for s in [
            "crash",
            "crash:10",
            "crash:10:5:now",
            "drop",
            "drop:1.5",
            "drop:-0.1",
            "crash:0:5",
            "crash:10:0",
            "crash:inf:5",
            "crash:nan:1",
            "crash:-5:2",
            "crash:10:nan",
            "drop:nan",
            "delay:-1",
            "delay:inf",
            "delay:nan",
            "warp",
            "drop:0.1,drop:0.2",
            "crash:10:5,crash:20:5",
            "delay:1,delay:2",
            "partition",
            "partition:100:20",
            "partition:0:20:0.5",
            "partition:100:0:0.5",
            "partition:100:20:0",
            "partition:100:20:1.5",
            "partition:100:20:nan",
            "partition:100:20:0.5:tight",
            "partition:1:1:0.5,partition:2:2:0.5",
            "churn",
            "churn:100",
            "churn:0:5",
            "churn:100:0",
            "churn:10:20",
            "churn:10:10",
            "churn:1000:1,churn:1000:1",
            "crash:100:5,churn:1000:1",
            "corrupt",
            "corrupt:-0.1",
            "corrupt:1.5",
            "corrupt:nan",
            "corrupt:0.1,corrupt:0.2",
        ] {
            assert!(s.parse::<FaultSpec>().is_err(), "'{s}' should be rejected");
        }
    }

    #[test]
    fn rejection_messages_name_the_field() {
        let err = |s: &str| s.parse::<FaultSpec>().unwrap_err().to_string();
        assert!(
            err("crash:nan:1").contains("MTBF"),
            "{}",
            err("crash:nan:1")
        );
        assert!(
            err("crash:10:-1").contains("MTTR"),
            "{}",
            err("crash:10:-1")
        );
        assert!(err("drop:1.5").contains("drop"), "{}", err("drop:1.5"));
        assert!(err("delay:-1").contains("delay"), "{}", err("delay:-1"));
        assert!(err("warp").contains("bad fault clause"), "{}", err("warp"));
        assert!(
            err("crash:10:5,crash:20:5").contains("duplicate"),
            "{}",
            err("crash:10:5,crash:20:5")
        );
    }

    #[test]
    fn validate_checks_ranges() {
        assert!(FaultSpec::crash(100.0, 5.0).validate().is_ok());
        assert!(FaultSpec::crash(-1.0, 5.0).validate().is_err());
        assert!(FaultSpec::drop(0.5).validate().is_ok());
        assert!(FaultSpec::drop(2.0).validate().is_err());
        assert!(FaultSpec::partition(100.0, 20.0, 0.5).validate().is_ok());
        assert!(FaultSpec::partition(100.0, 0.0, 0.5).validate().is_err());
        assert!(FaultSpec::partition(100.0, 20.0, 0.0).validate().is_err());
        assert!(FaultSpec::churn(200.0, 20.0).validate().is_ok());
        assert!(FaultSpec::churn(20.0, 200.0).validate().is_err());
        assert!(FaultSpec::corrupt(0.5).validate().is_ok());
        assert!(FaultSpec::corrupt(1.5).validate().is_err());
    }

    #[test]
    fn new_fault_rejections_name_the_degenerate_field() {
        let err = |s: &str| s.parse::<FaultSpec>().unwrap_err().to_string();
        assert!(
            err("partition:100:0:0.5").contains("zero-length"),
            "{}",
            err("partition:100:0:0.5")
        );
        assert!(
            err("churn:10:20").contains("empty the cluster"),
            "{}",
            err("churn:10:20")
        );
        assert!(
            err("crash:100:5,churn:1000:1").contains("cannot be combined"),
            "{}",
            err("crash:100:5,churn:1000:1")
        );
        assert!(
            err("corrupt:1.5").contains("corrupt fraction"),
            "{}",
            err("corrupt:1.5")
        );
    }

    #[test]
    fn is_none_sees_every_fault_kind() {
        assert!(FaultSpec::none().is_none());
        assert!(FaultSpec::corrupt(0.0).is_none(), "zero corruption is noop");
        for spec in [
            FaultSpec::crash(100.0, 5.0),
            FaultSpec::drop(0.5),
            FaultSpec::partition(100.0, 20.0, 0.5),
            FaultSpec::churn(200.0, 20.0),
            FaultSpec::corrupt(0.1),
        ] {
            assert!(!spec.is_none(), "{spec} should not be none");
        }
    }
}
