//! The discrete-event simulation loop.

use std::collections::BTreeMap;

use staleload_cluster::{Admission, Cluster, Job, ServerId};
use staleload_info::{InfoDispatch, InfoModel, InfoSpec};
use staleload_policies::{DispatchPolicy, Policy, PolicySpec};
use staleload_sim::{
    CalendarBackend, EventScheduler, HeapBackend, OnlineStats, SchedError, SchedulerFamily,
    SchedulerKind, SimRng,
};
use staleload_workloads::{ArrivalProcess, RetrySpec};

use crate::config::ConfigError;
use crate::{
    ArrivalSpec, CrashSpec, OverloadStats, PartitionSpec, ResilienceStats, RunDetail, SimConfig,
    SimError,
};

/// Counters for the fault process of one run (all zero when the run was
/// fault-free).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultStats {
    /// Server crashes injected.
    pub crashes: u64,
    /// Servers brought back up.
    pub recoveries: u64,
    /// Jobs moved off a crashed server's queue (re-dispatch mode only).
    pub redispatched: u64,
    /// Arrivals routed to a down server and redirected to an up one.
    pub redirected: u64,
    /// Summed server-down time (a server down for 2 time units counts 2,
    /// whether or not others were down simultaneously).
    pub downtime: f64,
}

/// A non-fatal data-quality warning attached to a [`RunResult`].
///
/// Diagnostics flag results that are *valid but suspect* — the run
/// completed, yet something the experimenter should know about happened
/// (e.g. the load-history window was too small, so some delayed views were
/// answered inexactly).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable machine-readable tag (e.g. `"history-misses"`).
    pub code: &'static str,
    /// Human-readable explanation with the relevant numbers.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.code, self.message)
    }
}

/// The outcome of one seeded simulation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Mean response (sojourn) time over measured jobs.
    pub mean_response: f64,
    /// Full response-time statistics over measured jobs.
    pub response: OnlineStats,
    /// Number of jobs contributing to the metric.
    pub measured_jobs: u64,
    /// Jobs generated in total (≥ the configured count only for
    /// update-on-access experiments that scale work per client).
    pub generated: u64,
    /// Simulated time of the last departure.
    pub end_time: f64,
    /// Delayed-view queries answered inexactly (should be 0; > 0 means the
    /// history window was too small for the delay distribution).
    pub history_misses: u64,
    /// Fault-process counters (all zero for a fault-free run).
    pub faults: FaultStats,
    /// Overload-control counters (all zero when queue caps, deadlines, and
    /// retries are off).
    pub overload: OverloadStats,
    /// Degraded-information counters: hedges, quarantine churn, corrupted
    /// reports, partition exposure (all zero when those knobs are off).
    pub resilience: ResilienceStats,
    /// Non-fatal warnings about the run's data quality.
    pub diagnostics: Vec<Diagnostic>,
    /// Tail/fairness/occupancy metrics (see [`RunDetail`]).
    pub detail: RunDetail,
}

impl RunResult {
    /// Completed jobs per unit time — the paper's throughput, net of jobs
    /// the overload controls turned away.
    pub fn goodput(&self) -> f64 {
        if self.end_time <= 0.0 {
            return 0.0;
        }
        (self.generated - self.overload.abandoned) as f64 / self.end_time
    }

    /// Generated jobs per unit time (what the workload offered, whether or
    /// not the system completed it).
    pub fn offered_throughput(&self) -> f64 {
        if self.end_time <= 0.0 {
            return 0.0;
        }
        self.generated as f64 / self.end_time
    }
}

/// A job waiting out its backoff before re-entering the arrival stream.
#[derive(Debug, Clone, Copy)]
struct OrbitEntry {
    job: Job,
    client: usize,
    /// Admission attempts already made (and failed).
    attempts: u32,
    /// The backoff wait that produced this entry (decorrelated jitter
    /// feeds it forward).
    prev_backoff: f64,
}

/// A scheduled deadline check for a waiting job.
#[derive(Debug, Clone, Copy)]
struct RenegeEntry {
    /// Where the job was queued at admission. A job moved elsewhere by
    /// work stealing or crash re-dispatch silently loses its deadline (a
    /// deliberate simplification: migration restarts the job's placement).
    server: ServerId,
    job_id: u64,
    client: usize,
    attempts: u32,
    prev_backoff: Option<f64>,
}

/// Routes a bounced (rejected or reneged) job: into the retry orbit with a
/// fresh backoff if attempts remain, otherwise it is abandoned. Draws only
/// from the dedicated retry stream.
#[allow(clippy::too_many_arguments)] // one slot per piece of bounce state
fn bounce<S: EventScheduler<OrbitEntry>>(
    retry: Option<RetrySpec>,
    job: Job,
    client: usize,
    attempts: u32,
    prev_backoff: Option<f64>,
    now: f64,
    orbit: &mut S,
    retry_rng: &mut SimRng,
    overload: &mut OverloadStats,
) -> Result<(), SchedError> {
    match retry {
        Some(spec) if attempts < spec.max_attempts => {
            let wait = spec.backoff(prev_backoff, retry_rng);
            overload.retries += 1;
            orbit.try_push(
                now + wait,
                OrbitEntry {
                    job,
                    client,
                    attempts,
                    prev_backoff: wait,
                },
            )?;
        }
        _ => overload.abandoned += 1,
    }
    Ok(())
}

/// Which system event fires next (fault events are handled separately).
#[derive(Debug, Clone, Copy)]
enum SystemEvent {
    Arrival,
    Departure,
    Renege,
    Orbit,
}

/// The crash/recovery process: each server alternates between up and down
/// with exponential time-to-failure (`mtbf`) and time-to-repair (`mttr`),
/// independently of the others.
///
/// All randomness is drawn from the engine's dedicated fault stream, in a
/// deterministic order (ties broken by server id), so the rest of the run
/// is unperturbed by the fault process.
struct CrashProcess {
    spec: CrashSpec,
    /// Next up→down or down→up transition time per server.
    next: Vec<f64>,
    down_since: Vec<Option<f64>>,
    /// Cached minimum of `next` (ties broken by lowest id). `next` only
    /// changes through `schedule_*`, so refreshing there keeps `peek` —
    /// called once per event-loop iteration — O(1) instead of an O(n)
    /// scan, which was a ~3x slowdown at n = 256 on faulted runs.
    pending: (f64, ServerId),
}

impl CrashProcess {
    fn new(spec: CrashSpec, n: usize, rng: &mut SimRng) -> Self {
        let next: Vec<f64> = (0..n).map(|_| rng.exp(spec.mtbf)).collect();
        let mut process = Self {
            spec,
            next,
            down_since: vec![None; n],
            pending: (f64::INFINITY, 0),
        };
        process.refresh();
        process
    }

    /// Recomputes the cached earliest transition. Strict `<` preserves
    /// the lowest-id tie-break the uncached scan had.
    fn refresh(&mut self) {
        let mut best = (f64::INFINITY, 0);
        for (s, &t) in self.next.iter().enumerate() {
            if t < best.0 {
                best = (t, s);
            }
        }
        self.pending = best;
    }

    /// The next transition (time, server); ties broken by lowest id.
    fn peek(&self) -> (f64, ServerId) {
        self.pending
    }

    fn schedule_crash(&mut self, server: ServerId, now: f64, rng: &mut SimRng) {
        self.next[server] = now + rng.exp(self.spec.mtbf);
        self.refresh();
    }

    fn schedule_recovery(&mut self, server: ServerId, now: f64, rng: &mut SimRng) {
        self.next[server] = now + rng.exp(self.spec.mttr);
        self.refresh();
    }
}

/// The view-partition process: recurring intervals during which a subset of
/// servers is invisible to the bulletin board (pure information-plane
/// faults — the hidden servers keep serving; see [`PartitionSpec`]).
/// Intervals never overlap: the next start is drawn when the current
/// partition heals. All randomness comes from a dedicated fork of the fault
/// stream taken only when partitions are configured, so partition-free runs
/// stay bit-identical.
struct PartitionProcess {
    spec: PartitionSpec,
    rng: SimRng,
    /// Next transition: a partition start while `hidden` is empty, the
    /// heal time otherwise.
    next: f64,
    /// When the active partition started (meaningful while `hidden` is
    /// non-empty).
    started: f64,
    /// Servers hidden by the active partition.
    hidden: Vec<ServerId>,
    /// Scratch index buffer for drawing random subsets.
    scratch: Vec<ServerId>,
    /// Server-seconds of invisibility over healed partitions.
    seconds: f64,
}

impl PartitionProcess {
    fn new(spec: PartitionSpec, mut rng: SimRng) -> Self {
        let next = rng.exp(spec.mtbf);
        Self {
            spec,
            rng,
            next,
            started: 0.0,
            hidden: Vec::new(),
            scratch: Vec::new(),
            seconds: 0.0,
        }
    }

    /// Time of the next start/heal transition.
    fn peek(&self) -> f64 {
        self.next
    }

    /// Fires the pending transition: hides a fresh subset of servers, or
    /// heals the active partition.
    fn step(&mut self, cluster: &mut Cluster, now: f64) {
        if self.hidden.is_empty() {
            let n = cluster.len();
            let count = ((self.spec.fraction * n as f64).floor() as usize).clamp(1, n);
            if self.spec.correlated {
                // A contiguous id block (a rack losing its uplink),
                // wrapping past the last id.
                let offset = self.rng.index(n);
                self.hidden.extend((0..count).map(|i| (offset + i) % n));
            } else {
                // Uniform random subset via a partial Fisher–Yates pass.
                self.scratch.clear();
                self.scratch.extend(0..n);
                for i in 0..count {
                    let j = i + self.rng.index(n - i);
                    self.scratch.swap(i, j);
                }
                self.hidden.extend(&self.scratch[..count]);
            }
            for &s in &self.hidden {
                cluster.set_visible(s, false);
            }
            self.started = now;
            self.next = now + self.spec.duration;
        } else {
            for &s in &self.hidden {
                cluster.set_visible(s, true);
            }
            self.seconds += self.hidden.len() as f64 * (now - self.started);
            self.hidden.clear();
            self.next = now + self.rng.exp(self.spec.mtbf);
        }
    }

    /// Server-seconds of invisibility as of `end_time`, counting the
    /// still-active partition's partial interval.
    fn total_seconds(&self, end_time: f64) -> f64 {
        if self.hidden.is_empty() {
            self.seconds
        } else {
            self.seconds + self.hidden.len() as f64 * (end_time - self.started).max(0.0)
        }
    }
}

/// Picks a uniformly random *up* server, or `None` if the whole cluster is
/// down. Used to re-route work around crashed servers; draws only from the
/// fault stream so placement policy streams stay unperturbed.
fn random_up_server(cluster: &Cluster, rng: &mut SimRng) -> Option<ServerId> {
    let ups = cluster.up_count();
    if ups == 0 {
        return None;
    }
    let mut k = rng.index(ups);
    for s in 0..cluster.len() {
        if cluster.is_up(s) {
            if k == 0 {
                return Some(s);
            }
            k -= 1;
        }
    }
    // lint: allow(panic-hygiene) — the loop visits every up server and k < ups
    unreachable!("up_count() counted the up servers")
}

/// Runs one simulation: `cfg.arrivals` jobs through `cfg.servers` FIFO
/// queues, routed by `policy` using views produced by `info`.
///
/// Jobs arriving during the warm-up fraction are excluded from the metric;
/// after the last arrival the system drains so every measured job completes.
///
/// Determinism: the run is a pure function of the configuration (including
/// `cfg.seed`). Independent RNG streams are forked for the arrival process,
/// service times, the policy, the information model, the fault process, and
/// the retry orbit, so e.g. changing the policy does not perturb the arrival
/// pattern — and a run with `FaultSpec::none()` and the overload controls
/// unset is bit-identical to one without that machinery (those streams are
/// forked last and never drawn from).
///
/// # Errors
///
/// Returns [`SimError::Config`] when the specs are inconsistent: bad policy
/// or info-model parameters, a bursty/MMPP arrival spec that cannot attain
/// the configured load, or loss injection on an info model without an
/// update channel.
pub fn run_simulation(
    cfg: &SimConfig,
    arrivals: &ArrivalSpec,
    info: &InfoSpec,
    policy: &PolicySpec,
) -> Result<RunResult, SimError> {
    // The population fast path has no pending-event set at all; both
    // scheduler backends are the same degenerate three-clock race there.
    if cfg.engine == crate::EngineMode::Population {
        return crate::population::run_population(cfg, arrivals, info, policy);
    }
    // Monomorphize the hot loop per backend: every queue operation below
    // compiles to a direct (inlinable) call, no vtable.
    match cfg.scheduler {
        SchedulerKind::Heap => run_inner::<HeapBackend>(cfg, arrivals, info, policy),
        SchedulerKind::Calendar => run_inner::<CalendarBackend>(cfg, arrivals, info, policy),
    }
}

fn run_inner<F: SchedulerFamily>(
    cfg: &SimConfig,
    arrivals: &ArrivalSpec,
    info: &InfoSpec,
    policy: &PolicySpec,
) -> Result<RunResult, SimError> {
    info.validate().map_err(ConfigError::new)?;
    policy.validate().map_err(ConfigError::new)?;
    cfg.faults.validate()?;
    if cfg.faults.loss.is_some() && !info.supports_loss() {
        return Err(ConfigError::new(format!(
            "loss injection needs a bulletin-board info model (periodic or individual), got {}",
            info.label()
        ))
        .into());
    }
    if cfg.faults.partition.is_some() && !info.supports_loss() {
        return Err(ConfigError::new(format!(
            "view partitions need a bulletin-board info model (periodic or individual), got {}",
            info.label()
        ))
        .into());
    }
    if cfg.faults.corrupt.is_some_and(|c| !c.is_noop()) && !info.supports_loss() {
        return Err(ConfigError::new(format!(
            "report corruption needs a bulletin-board info model (periodic or individual), got {}",
            info.label()
        ))
        .into());
    }
    // Hedging is engine machinery: strip the outermost wrapper (validate()
    // above already rejected h = 0 and nested hedging) and check the
    // factor fits the cluster and nothing else fights over job ownership.
    let (hedge, policy) = policy.split_hedged();
    if let Some(h) = hedge {
        if h as usize > cfg.servers {
            return Err(ConfigError::new(format!(
                "hedge factor h={h} exceeds the cluster size n={}",
                cfg.servers
            ))
            .into());
        }
        if cfg.queue_cap.is_some() || cfg.deadline.is_some() || cfg.retry.is_some() {
            return Err(ConfigError::new(
                "hedged dispatch cannot be combined with overload controls (queue \
                 caps, deadlines, retries): both would fight over job ownership",
            )
            .into());
        }
        if cfg.work_stealing.is_some() {
            return Err(ConfigError::new(
                "hedged dispatch cannot be combined with work stealing: a stolen \
                 replica would escape the hedge book",
            )
            .into());
        }
        if cfg.faults.crash.is_some() {
            return Err(ConfigError::new(
                "hedged dispatch cannot be combined with crash faults (a replica \
                 stalled on a down server could double-complete); model server \
                 loss with churn instead",
            )
            .into());
        }
    }

    let mut master = SimRng::from_seed(cfg.seed);
    let mut arrival_rng = master.fork();
    let mut service_rng = master.fork();
    let mut policy_rng = master.fork();
    let mut model_rng = master.fork();
    // Forked after the four streams the fault-free engine uses, so
    // fault-free runs replay historical trajectories bit-for-bit.
    let mut fault_rng = master.fork();
    // Forked last and drawn only by the retry orbit: configurations
    // without retries stay bit-identical too (same discipline as the
    // fault stream).
    let mut retry_rng = master.fork();

    let n = cfg.servers;
    let mut cluster = match &cfg.capacities {
        Some(caps) => Cluster::with_capacities(caps),
        None => Cluster::new(n),
    };
    cluster.set_queue_cap(cfg.queue_cap);
    if let Some(window) = info.history_window() {
        cluster.enable_history(window);
    }

    let clients = arrivals.clients();
    let mut model = match cfg.faults.loss {
        Some(loss) => InfoDispatch::from_spec_lossy(info, n, loss, fault_rng.fork())
            .ok_or_else(|| {
                ConfigError::new(format!(
                    "loss injection needs a bulletin-board info model (periodic or individual), got {}",
                    info.label()
                ))
            })?,
        None => InfoDispatch::from_spec(info, n, clients),
    };
    if let Some(corrupt) = cfg.faults.corrupt.filter(|c| !c.is_noop()) {
        // The fork happens only when corruption is live, so honest runs
        // stay bit-identical (same discipline as the loss channel above).
        let attached = model.attach_corruptor(corrupt, fault_rng.fork());
        debug_assert!(attached, "supports_loss() was checked above");
    }
    // Cached build: adopts the scratch buffers (probability/CDF/sort
    // vectors) of the policy retired by this thread's previous run.
    let mut policy = DispatchPolicy::from_spec_cached(policy);
    // Churn is crash-with-eviction: a departing server's queue is drained
    // and re-dispatched (re-execution semantics) and it rejoins cold, so
    // the membership process reuses the crash machinery with redispatch
    // forced on. FaultSpec::validate() rejects configuring both at once.
    let membership = cfg.faults.crash.or(cfg.faults.churn.map(|c| CrashSpec {
        mtbf: c.mtbf,
        mttr: c.downtime,
        redispatch: true,
    }));
    let mut crash_process = membership.map(|spec| CrashProcess::new(spec, n, &mut fault_rng));
    let mut partition_process = cfg
        .faults
        .partition
        .map(|spec| PartitionProcess::new(spec, fault_rng.fork()));

    let total_rate = cfg.total_rate();
    let mut process = match *arrivals {
        ArrivalSpec::Poisson => ArrivalProcess::poisson(total_rate),
        ArrivalSpec::PoissonClients { clients } => {
            ArrivalProcess::poisson_clients(clients, total_rate)
        }
        ArrivalSpec::BurstyClients { clients, burst } => {
            let mean_inter_request = clients as f64 / total_rate;
            ArrivalProcess::bursty_clients(clients, mean_inter_request, burst, &mut arrival_rng)
                .map_err(|e| ConfigError::new(format!("bursty arrival spec: {e}")))?
        }
        ArrivalSpec::Mmpp {
            rate_ratio,
            high_fraction,
            cycle_mean,
        } => {
            if rate_ratio < 1.0 {
                return Err(ConfigError::new(format!(
                    "MMPP rate ratio must be at least 1, got {rate_ratio}"
                ))
                .into());
            }
            if !((0.0..1.0).contains(&high_fraction) && high_fraction > 0.0) {
                return Err(ConfigError::new(format!(
                    "MMPP high fraction must be in (0, 1), got {high_fraction}"
                ))
                .into());
            }
            // Solve the low rate so the sojourn-weighted mean is λ·n.
            let low = total_rate / (1.0 - high_fraction + high_fraction * rate_ratio);
            let high = rate_ratio * low;
            ArrivalProcess::mmpp(
                high,
                high_fraction * cycle_mean,
                low,
                (1.0 - high_fraction) * cycle_mean,
            )
            .map_err(|e| ConfigError::new(format!("MMPP arrival spec: {e}")))?
        }
    };

    let warmup = cfg.warmup_jobs();
    let mut departures: F::Scheduler<ServerId> = EventScheduler::with_capacity(n);
    // The departure each server currently has in the queue. Crashes
    // invalidate scheduled departures; rather than remove them from the
    // queue we drop any popped/peeked entry that no longer matches.
    let mut scheduled = crate::scratch::PooledOptVec::none(n);
    // Wall-clock work the interrupted head job had left at crash time
    // (stall mode resumes it on recovery).
    let mut frozen = crate::scratch::PooledOptVec::none(n);
    let mut stats = FaultStats::default();
    let mut overload = OverloadStats::default();
    let mut resilience = ResilienceStats::default();
    // Hedged dispatch: replica locations per hedged job id, primary first
    // (BTreeMap keeps any iteration deterministic). h = 1 dispatches a
    // single copy, which is exactly the unhedged path.
    let hedge_h = hedge.filter(|&h| h > 1);
    let mut hedge_book: BTreeMap<u64, Vec<ServerId>> = BTreeMap::new();
    let mut hedge_scratch: Vec<ServerId> = Vec::new();
    // Deadline checks for waiting jobs and the retry orbit; both stay
    // empty (and cost nothing) when the overload controls are off.
    let mut reneges: F::Scheduler<RenegeEntry> = EventScheduler::new();
    let mut orbit: F::Scheduler<OrbitEntry> = EventScheduler::new();
    let mut response = OnlineStats::new();
    let mut detail = RunDetail::new(n, cfg.sketch_cap);
    let mut next_id: u64 = 0;
    let mut next_arrival: Option<(f64, usize)> = Some(process.next(&mut arrival_rng));
    let mut end_time: f64 = 0.0;

    loop {
        // Discard departures a crash invalidated (their server's scheduled
        // slot was cleared or rescheduled) so peek_time sees a live event.
        while let Some((t, &server)) = departures.peek() {
            if scheduled[server] == Some(t) {
                break;
            }
            departures.pop();
        }

        // Event times are always finite, so None maps to infinity safely.
        let a = next_arrival.map_or(f64::INFINITY, |(t, _)| t);
        let d = departures.peek_time().unwrap_or(f64::INFINITY);
        let r = reneges.peek_time().unwrap_or(f64::INFINITY);
        let o = orbit.peek_time().unwrap_or(f64::INFINITY);
        let earliest = a.min(d).min(r).min(o);
        let system_next = earliest.is_finite().then_some(earliest);
        // Tie priority: arrivals first (the historical convention), then
        // departures — so a job entering service "at" its deadline is
        // served, not reneged — then deadline checks, then orbit
        // re-arrivals.
        let system_event = if a <= d && a <= r && a <= o {
            SystemEvent::Arrival
        } else if d <= r && d <= o {
            SystemEvent::Departure
        } else if r <= o {
            SystemEvent::Renege
        } else {
            SystemEvent::Orbit
        };
        let fault_next = match (
            crash_process.as_ref().map(|c| c.peek().0),
            partition_process.as_ref().map(PartitionProcess::peek),
        ) {
            (None, None) => None,
            (Some(c), None) => Some(c),
            (None, Some(p)) => Some(p),
            (Some(c), Some(p)) => Some(c.min(p)),
        };

        // Ties: system events before fault events, so a departure "at" the
        // crash instant completes and an arrival still sees the old regime.
        let (step_time, fault_step) = match (system_next, fault_next) {
            (None, None) => break,
            (None, Some(f)) => {
                if next_arrival.is_none() && cluster.in_system() == 0 {
                    // Fully drained: don't chase crash events forever.
                    break;
                }
                // Jobs are stranded on down servers (stall mode); only
                // fault events can advance the clock now.
                (f, true)
            }
            (Some(s), None) => (s, false),
            (Some(s), Some(f)) => {
                if f < s {
                    (f, true)
                } else {
                    (s, false)
                }
            }
        };

        // Let the information model catch up first (ties: model before
        // system events, so a board refreshed "at" an arrival's instant is
        // visible to that arrival).
        while let Some(t) = model.next_event() {
            if t <= step_time {
                model.on_event(t, &cluster);
            } else {
                break;
            }
        }

        if fault_step {
            // Ties: membership transitions before partition transitions.
            let crash_due = crash_process
                .as_ref()
                .is_some_and(|c| c.peek().0 <= step_time);
            if !crash_due {
                let process = partition_process
                    .as_mut()
                    // lint: allow(panic-hygiene) — fault_step without a crash due implies a partition process
                    .expect("fault_step without a crash due implies a partition");
                process.step(&mut cluster, step_time);
                continue;
            }
            let process = crash_process
                .as_mut()
                // lint: allow(panic-hygiene) — fault_step is only set when crash_process is Some
                .expect("fault_step implies a crash process");
            let (t, server) = process.peek();
            if cluster.is_up(server) {
                stats.crashes += 1;
                process.down_since[server] = Some(t);
                cluster.crash(server, t);
                if let Some(dep) = scheduled[server].take() {
                    // The in-service job is interrupted; remember its
                    // remaining work so stall mode can resume it.
                    frozen[server] = Some(dep - t);
                }
                if process.spec.redispatch && cluster.up_count() > 0 {
                    // Move the whole queue (head included: it restarts from
                    // scratch elsewhere — re-execution semantics) to
                    // uniformly random up servers.
                    frozen[server] = None;
                    for job in cluster.drain(server, t) {
                        let target = random_up_server(&cluster, &mut fault_rng)
                            // lint: allow(panic-hygiene) — drain only runs when another server is up
                            .expect("up_count() > 0 was checked");
                        stats.redispatched += 1;
                        if let Some(dep) = cluster.requeue(target, job, t) {
                            departures.try_push(dep, target)?;
                            scheduled[target] = Some(dep);
                        }
                        if let Some(replicas) = hedge_book.get_mut(&job.id) {
                            // A migrated hedge replica must stay findable for
                            // cancel-on-completion.
                            if let Some(slot) = replicas.iter_mut().find(|s| **s == server) {
                                *slot = target;
                            }
                        }
                    }
                    detail.jobs_in_system.update(t, cluster.in_system() as f64);
                }
                process.schedule_recovery(server, t, &mut fault_rng);
            } else {
                stats.recoveries += 1;
                let since = process.down_since[server]
                    .take()
                    // lint: allow(panic-hygiene) — crash path always records down_since
                    .expect("a down server recorded when it went down");
                stats.downtime += t - since;
                if let Some(dep) = cluster.recover(server, t, frozen[server].take()) {
                    departures.try_push(dep, server)?;
                    scheduled[server] = Some(dep);
                }
                process.schedule_crash(server, t, &mut fault_rng);
            }
            continue;
        }

        // Arrivals and orbit re-arrivals share the admission flow below;
        // the tuple is (time, job, client, attempts made incl. this one,
        // previous backoff).
        let admission: Option<(f64, Job, usize, u32, Option<f64>)> = match system_event {
            SystemEvent::Arrival => {
                // lint: allow(panic-hygiene) — SystemEvent::Arrival is only chosen when next_arrival is Some
                let (t, client) = next_arrival.take().expect("arrival is present");
                let service = cfg.service.sample(&mut service_rng);
                let job = Job::new(next_id, t, service);
                next_id += 1;
                if next_id < cfg.arrivals {
                    next_arrival = Some(process.next(&mut arrival_rng));
                }
                Some((t, job, client, 1, None))
            }
            SystemEvent::Orbit => {
                // lint: allow(panic-hygiene) — SystemEvent::Orbit is only chosen when the orbit peeked Some
                let (t, entry) = orbit.pop().expect("orbit entry is present");
                Some((
                    t,
                    entry.job,
                    entry.client,
                    entry.attempts + 1,
                    Some(entry.prev_backoff),
                ))
            }
            SystemEvent::Departure => {
                // lint: allow(panic-hygiene) — SystemEvent::Departure is only chosen when a departure peeked Some
                let (t, server) = departures.pop().expect("departure is present");
                scheduled[server] = None;
                let (job, next) = cluster.complete(server, t);
                match next {
                    Some(dep) => {
                        departures.try_push(dep, server)?;
                        scheduled[server] = Some(dep);
                    }
                    None => {
                        // Receiver-driven rebalancing (extension): a server
                        // going idle pulls a waiting job from the longest
                        // queue.
                        if let Some(min_victim) = cfg.work_stealing {
                            if let Some(dep) = cluster.steal_for_idle(server, t, min_victim) {
                                departures.try_push(dep, server)?;
                                scheduled[server] = Some(dep);
                            }
                        }
                    }
                }
                // First completion wins: cancel the losing replicas of a
                // hedged job the instant any copy finishes.
                if let Some(replicas) = hedge_book.remove(&job.id) {
                    if replicas[0] != server {
                        resilience.hedges_won += 1;
                    }
                    let mut winner_seen = false;
                    for &s2 in &replicas {
                        if s2 == server && !winner_seen {
                            winner_seen = true;
                            continue;
                        }
                        let cancelled = if cluster.is_up(s2) {
                            if cluster.head_job_id(s2) == Some(job.id) {
                                // The loser is in service: abort it and
                                // promote its successor. Its stale departure
                                // event is dropped by the scheduled[] filter.
                                scheduled[s2] = None;
                                if let Some(dep) = cluster.abort_in_service(s2, t) {
                                    departures.try_push(dep, s2)?;
                                    scheduled[s2] = Some(dep);
                                }
                                true
                            } else {
                                cluster.cancel_waiting(s2, job.id, t, true).is_some()
                            }
                        } else {
                            // Down server (defensive: churn redispatch drains
                            // queues, so replicas migrate off dead servers).
                            if cluster.head_job_id(s2) == Some(job.id) {
                                frozen[s2] = None;
                            }
                            cluster.cancel_waiting(s2, job.id, t, false).is_some()
                        };
                        debug_assert!(cancelled, "hedge book tracked a missing replica");
                        if cancelled {
                            resilience.hedges_cancelled += 1;
                        }
                    }
                }
                if job.id >= warmup {
                    response.record(t - job.arrival);
                    detail.response_histogram.record(t - job.arrival);
                    detail.response_sketch.record(t - job.arrival);
                }
                detail.jobs_in_system.update(t, cluster.in_system() as f64);
                end_time = t;
                None
            }
            SystemEvent::Renege => {
                // lint: allow(panic-hygiene) — SystemEvent::Renege is only chosen when a renege peeked Some
                let (t, entry) = reneges.pop().expect("renege entry is present");
                // The head of an up, busy server is in service; on a down
                // server only an interrupted (frozen) head has started.
                let head_in_service = if cluster.is_up(entry.server) {
                    cluster.load(entry.server) > 0
                } else {
                    frozen[entry.server].is_some()
                };
                if let Some(job) =
                    cluster.renege_waiting(entry.server, entry.job_id, t, head_in_service)
                {
                    overload.reneged += 1;
                    detail.jobs_in_system.update(t, cluster.in_system() as f64);
                    bounce(
                        cfg.retry,
                        job,
                        entry.client,
                        entry.attempts,
                        entry.prev_backoff,
                        t,
                        &mut orbit,
                        &mut retry_rng,
                        &mut overload,
                    )?;
                }
                // A stale check (job already serving, completed, or
                // migrated) is dropped silently: nothing happened.
                None
            }
        };

        if let Some((t, job, client, attempts, prev_backoff)) = admission {
            policy.observe_arrival(t);
            let mut server = {
                let view = model.view(t, client, &mut cluster, &mut model_rng);
                policy.select_sized(&view, job.service, &mut policy_rng)
            };
            if !cluster.is_up(server) {
                // The policy picked a dead server (its board entry lives
                // on). Fail the placement over to a random up server — the
                // client's retry — or let the job wait out a full outage.
                if let Some(alive) = random_up_server(&cluster, &mut fault_rng) {
                    server = alive;
                    stats.redirected += 1;
                }
            }
            match cluster.admit(server, job, t) {
                Admission::Rejected => {
                    overload.rejected += 1;
                    bounce(
                        cfg.retry,
                        job,
                        client,
                        attempts,
                        prev_backoff,
                        t,
                        &mut orbit,
                        &mut retry_rng,
                        &mut overload,
                    )?;
                }
                accepted => {
                    if let Admission::InService(dep) = accepted {
                        departures.try_push(dep, server)?;
                        scheduled[server] = Some(dep);
                    } else if let Some(deadline) = cfg.deadline {
                        // Only a job that queued behind others can ever
                        // renege; one already in service serves to
                        // completion.
                        reneges.try_push(
                            t + deadline,
                            RenegeEntry {
                                server,
                                job_id: job.id,
                                client,
                                attempts,
                                prev_backoff,
                            },
                        )?;
                    }
                    model.after_placement(t, client, &cluster);
                    if let Some(h) = hedge_h {
                        // Place up to h − 1 hedge replicas on distinct extra
                        // servers chosen by the inner policy. Replicas go in
                        // via requeue (no arrival count), so conservation
                        // stays 1 arrival + 1 departure per logical job.
                        hedge_scratch.clear();
                        hedge_scratch.push(server);
                        for _ in 1..h {
                            let pick = {
                                let view = model.view(t, client, &mut cluster, &mut model_rng);
                                policy.select_sized(&view, job.service, &mut policy_rng)
                            };
                            if hedge_scratch.contains(&pick) || !cluster.is_up(pick) {
                                // Opportunistic hedging: a duplicate or dead
                                // pick just means one fewer replica.
                                continue;
                            }
                            resilience.hedges_issued += 1;
                            if let Some(dep) = cluster.requeue(pick, job, t) {
                                departures.try_push(dep, pick)?;
                                scheduled[pick] = Some(dep);
                            }
                            hedge_scratch.push(pick);
                        }
                        if hedge_scratch.len() > 1 {
                            hedge_book.insert(job.id, hedge_scratch.clone());
                        }
                    }
                    detail.jobs_in_system.update(t, cluster.in_system() as f64);
                }
            }
        }
    }

    debug_assert_eq!(cluster.in_system(), 0, "drain must empty the system");
    if let Some(process) = &crash_process {
        // Servers still down when the run ends contribute their partial
        // outage.
        for since in process.down_since.iter().flatten() {
            stats.downtime += (end_time - since).max(0.0);
        }
    }
    let mut diagnostics = Vec::new();
    let history_misses = cluster.history_misses();
    if history_misses > 0 {
        diagnostics.push(Diagnostic {
            code: "history-misses",
            message: format!(
                "{history_misses} delayed-view queries fell outside the retained load history; \
                 increase the history window (results may understate staleness effects)"
            ),
        });
    }
    for s in 0..n {
        detail.per_server_completed[s] = cluster.completed(s);
        detail.per_server_busy[s] = cluster.busy_time(s);
    }
    if let Some(process) = &partition_process {
        resilience.partition_seconds = process.total_seconds(end_time);
    }
    let telemetry = policy.telemetry();
    resilience.quarantine_ejections = telemetry.ejections;
    resilience.quarantine_readmissions = telemetry.readmissions;
    resilience.corrupted_reports = model.corrupted_reports();
    DispatchPolicy::recycle(policy);
    Ok(RunResult {
        mean_response: response.mean(),
        response,
        measured_jobs: response.count(),
        generated: next_id,
        end_time,
        history_misses,
        faults: stats,
        overload,
        resilience,
        diagnostics,
        detail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultSpec, SimConfigBuilder};

    /// Test shorthand: run a configuration that is known to be valid.
    fn run(
        cfg: &SimConfig,
        arrivals: &ArrivalSpec,
        info: &InfoSpec,
        policy: &PolicySpec,
    ) -> RunResult {
        run_simulation(cfg, arrivals, info, policy).expect("test config is valid")
    }

    fn quick_cfg(seed: u64) -> SimConfig {
        SimConfig::builder()
            .servers(10)
            .lambda(0.5)
            .arrivals(30_000)
            .seed(seed)
            .build()
    }

    #[test]
    fn random_split_matches_mm1_theory() {
        // Random splitting of Poisson(λ·n) over n servers makes each an
        // independent M/M/1 at load λ: mean response = 1/(1-λ) = 2 at λ=0.5.
        let cfg = quick_cfg(11);
        let r = run(
            &cfg,
            &ArrivalSpec::Poisson,
            &InfoSpec::Fresh,
            &PolicySpec::Random,
        );
        assert!(
            (r.mean_response - 2.0).abs() < 0.15,
            "mean response {} should be near 2.0",
            r.mean_response
        );
        assert_eq!(r.measured_jobs, 27_000);
        assert_eq!(r.generated, 30_000);
        assert_eq!(r.history_misses, 0);
        assert_eq!(r.faults, FaultStats::default());
        assert!(r.diagnostics.is_empty());
    }

    #[test]
    fn fresh_greedy_beats_random() {
        let cfg = quick_cfg(12);
        let greedy = run(
            &cfg,
            &ArrivalSpec::Poisson,
            &InfoSpec::Fresh,
            &PolicySpec::Greedy,
        );
        let random = run(
            &cfg,
            &ArrivalSpec::Poisson,
            &InfoSpec::Fresh,
            &PolicySpec::Random,
        );
        assert!(
            greedy.mean_response < random.mean_response,
            "greedy {} should beat random {}",
            greedy.mean_response,
            random.mean_response
        );
    }

    #[test]
    fn identical_seeds_are_bit_identical() {
        let cfg = quick_cfg(13);
        let spec = PolicySpec::BasicLi { lambda: 0.5 };
        let info = InfoSpec::Periodic { period: 5.0 };
        let a = run(&cfg, &ArrivalSpec::Poisson, &info, &spec);
        let b = run(&cfg, &ArrivalSpec::Poisson, &info, &spec);
        assert_eq!(a.mean_response.to_bits(), b.mean_response.to_bits());
        assert_eq!(a.end_time.to_bits(), b.end_time.to_bits());
    }

    #[test]
    fn different_seeds_differ() {
        let a = run(
            &quick_cfg(1),
            &ArrivalSpec::Poisson,
            &InfoSpec::Fresh,
            &PolicySpec::Random,
        );
        let b = run(
            &quick_cfg(2),
            &ArrivalSpec::Poisson,
            &InfoSpec::Fresh,
            &PolicySpec::Random,
        );
        assert_ne!(a.mean_response.to_bits(), b.mean_response.to_bits());
    }

    #[test]
    fn invalid_specs_error_instead_of_panicking() {
        let cfg = quick_cfg(1);
        let bad_policy = run_simulation(
            &cfg,
            &ArrivalSpec::Poisson,
            &InfoSpec::Fresh,
            &PolicySpec::KSubset { k: 0 },
        );
        assert!(
            matches!(bad_policy, Err(SimError::Config(_))),
            "{bad_policy:?}"
        );

        let bad_info = run_simulation(
            &cfg,
            &ArrivalSpec::Poisson,
            &InfoSpec::Periodic { period: 0.0 },
            &PolicySpec::Random,
        );
        assert!(matches!(bad_info, Err(SimError::Config(_))), "{bad_info:?}");

        let bad_mmpp = run_simulation(
            &cfg,
            &ArrivalSpec::Mmpp {
                rate_ratio: 0.5,
                high_fraction: 0.2,
                cycle_mean: 20.0,
            },
            &InfoSpec::Fresh,
            &PolicySpec::Random,
        );
        assert!(matches!(bad_mmpp, Err(SimError::Config(_))), "{bad_mmpp:?}");
    }

    #[test]
    fn loss_faults_need_a_board_model() {
        let mut builder = SimConfig::builder();
        let cfg = builder
            .servers(10)
            .lambda(0.5)
            .arrivals(1_000)
            .seed(1)
            .faults(FaultSpec::drop(0.5))
            .build();
        let err = run_simulation(
            &cfg,
            &ArrivalSpec::Poisson,
            &InfoSpec::Fresh,
            &PolicySpec::Random,
        );
        assert!(matches!(err, Err(SimError::Config(_))), "{err:?}");
        let ok = run_simulation(
            &cfg,
            &ArrivalSpec::Poisson,
            &InfoSpec::Periodic { period: 5.0 },
            &PolicySpec::Random,
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn fault_none_is_bit_identical_to_fault_free() {
        // The fault stream is forked but never drawn from, so the FaultSpec
        // plumbing must not perturb historical trajectories.
        let cfg = quick_cfg(13);
        let mut builder = SimConfig::builder();
        let cfg_none = builder
            .servers(10)
            .lambda(0.5)
            .arrivals(30_000)
            .seed(13)
            .faults(FaultSpec::none())
            .build();
        let spec = PolicySpec::BasicLi { lambda: 0.5 };
        let info = InfoSpec::Periodic { period: 5.0 };
        let a = run(&cfg, &ArrivalSpec::Poisson, &info, &spec);
        let b = run(&cfg_none, &ArrivalSpec::Poisson, &info, &spec);
        assert_eq!(a.mean_response.to_bits(), b.mean_response.to_bits());
        assert_eq!(a.end_time.to_bits(), b.end_time.to_bits());
    }

    fn faulty_cfg(seed: u64, faults: FaultSpec) -> SimConfig {
        SimConfig::builder()
            .servers(10)
            .lambda(0.5)
            .arrivals(30_000)
            .seed(seed)
            .faults(faults)
            .build()
    }

    #[test]
    fn crashes_complete_every_job_in_stall_mode() {
        let cfg = faulty_cfg(31, FaultSpec::crash(200.0, 20.0));
        let r = run(
            &cfg,
            &ArrivalSpec::Poisson,
            &InfoSpec::Periodic { period: 5.0 },
            &PolicySpec::BasicLi { lambda: 0.5 },
        );
        assert!(
            r.faults.crashes > 0,
            "MTBF 200 over a long run must crash someone"
        );
        assert!(r.faults.recoveries <= r.faults.crashes);
        assert_eq!(r.faults.redispatched, 0, "stall mode never moves jobs");
        assert_eq!(r.generated, 30_000);
        assert_eq!(
            r.detail.per_server_completed.iter().sum::<u64>(),
            30_000,
            "every generated job completes despite crashes"
        );
        assert!(r.faults.downtime > 0.0);
        // Outages stall jobs, so response must be worse than fault-free.
        let fault_free = run(
            &faulty_cfg(31, FaultSpec::none()),
            &ArrivalSpec::Poisson,
            &InfoSpec::Periodic { period: 5.0 },
            &PolicySpec::BasicLi { lambda: 0.5 },
        );
        assert!(r.mean_response > fault_free.mean_response);
    }

    #[test]
    fn redispatch_moves_jobs_and_completes_them_all() {
        let mut faults = FaultSpec::crash(150.0, 30.0);
        faults.crash = faults.crash.map(|mut c| {
            c.redispatch = true;
            c
        });
        let cfg = faulty_cfg(32, faults);
        let r = run(
            &cfg,
            &ArrivalSpec::Poisson,
            &InfoSpec::Periodic { period: 5.0 },
            &PolicySpec::BasicLi { lambda: 0.5 },
        );
        assert!(r.faults.crashes > 0);
        assert!(
            r.faults.redispatched > 0,
            "busy servers crash with queued jobs"
        );
        assert_eq!(
            r.detail.per_server_completed.iter().sum::<u64>(),
            30_000,
            "re-dispatched jobs complete elsewhere"
        );
    }

    #[test]
    fn crash_faults_are_deterministic() {
        let cfg = faulty_cfg(33, FaultSpec::crash(100.0, 10.0));
        let info = InfoSpec::Periodic { period: 5.0 };
        let spec = PolicySpec::BasicLi { lambda: 0.5 };
        let a = run(&cfg, &ArrivalSpec::Poisson, &info, &spec);
        let b = run(&cfg, &ArrivalSpec::Poisson, &info, &spec);
        assert_eq!(a.mean_response.to_bits(), b.mean_response.to_bits());
        assert_eq!(a.faults, b.faults);
    }

    #[test]
    fn dropped_updates_degrade_li() {
        let mk = |faults: FaultSpec, seed: u64| {
            run(
                &SimConfig::builder()
                    .servers(16)
                    .lambda(0.9)
                    .arrivals(60_000)
                    .seed(seed)
                    .faults(faults)
                    .build(),
                &ArrivalSpec::Poisson,
                &InfoSpec::Periodic { period: 10.0 },
                &PolicySpec::BasicLi { lambda: 0.9 },
            )
            .mean_response
        };
        let clean: f64 = (40..43).map(|s| mk(FaultSpec::none(), s)).sum::<f64>() / 3.0;
        let lossy: f64 = (40..43).map(|s| mk(FaultSpec::drop(0.9), s)).sum::<f64>() / 3.0;
        assert!(
            lossy > clean,
            "losing 90% of board refreshes must hurt LI: lossy {lossy} vs clean {clean}"
        );
    }

    #[test]
    fn continuous_model_reports_no_history_misses() {
        let cfg = quick_cfg(14);
        let info = InfoSpec::Continuous {
            delay: staleload_info::DelaySpec::Exponential { mean: 2.0 },
            knowledge: staleload_info::AgeKnowledge::Actual,
        };
        let r = run(
            &cfg,
            &ArrivalSpec::Poisson,
            &info,
            &PolicySpec::KSubset { k: 2 },
        );
        assert_eq!(
            r.history_misses, 0,
            "window must cover the delay distribution"
        );
        assert!(r.mean_response > 1.0);
    }

    #[test]
    fn update_on_access_runs_with_many_clients() {
        let cfg = SimConfig::builder()
            .servers(10)
            .lambda(0.5)
            .arrivals(20_000)
            .seed(15)
            .build();
        let r = run(
            &cfg,
            &ArrivalSpec::PoissonClients { clients: 25 },
            &InfoSpec::UpdateOnAccess,
            &PolicySpec::BasicLi { lambda: 0.5 },
        );
        assert_eq!(r.generated, 20_000);
        assert!(r.mean_response > 0.9);
    }

    #[test]
    fn mmpp_arrivals_keep_the_configured_mean_load() {
        let cfg = SimConfig::builder()
            .servers(10)
            .lambda(0.5)
            .arrivals(120_000)
            .seed(25)
            .build();
        let spec = ArrivalSpec::Mmpp {
            rate_ratio: 4.0,
            high_fraction: 0.2,
            cycle_mean: 20.0,
        };
        let r = run(&cfg, &spec, &InfoSpec::Fresh, &PolicySpec::Random);
        // Realized horizon matches arrivals / (λ·n) within a few percent.
        let expect = 120_000.0 / 5.0;
        assert!(
            (r.end_time - expect).abs() / expect < 0.06,
            "horizon {} vs expected {expect}",
            r.end_time
        );
        // Burstier arrivals queue more than plain Poisson at the same load.
        let poisson = run(
            &cfg,
            &ArrivalSpec::Poisson,
            &InfoSpec::Fresh,
            &PolicySpec::Random,
        );
        assert!(
            r.mean_response > poisson.mean_response,
            "MMPP {} should exceed Poisson {}",
            r.mean_response,
            poisson.mean_response
        );
    }

    #[test]
    fn detail_metrics_are_consistent() {
        let cfg = quick_cfg(23);
        let r = run(
            &cfg,
            &ArrivalSpec::Poisson,
            &InfoSpec::Fresh,
            &PolicySpec::Random,
        );
        // Little's law: E[N] = (total arrival rate) · E[T] over the run.
        let rate = r.generated as f64 / r.end_time;
        let little = rate * r.mean_response;
        let measured_n = r.detail.mean_jobs_in_system(r.end_time);
        assert!(
            (measured_n - little).abs() / little < 0.1,
            "Little's law: N {measured_n} vs lambda*T {little}"
        );
        // Utilization per server ≈ λ = 0.5.
        let utils = r.detail.utilizations(r.end_time);
        let mean_util = utils.iter().sum::<f64>() / utils.len() as f64;
        assert!(
            (mean_util - 0.5).abs() < 0.05,
            "mean utilization {mean_util}"
        );
        // Random placement over identical servers is fair.
        assert!(r.detail.throughput_fairness() > 0.99);
        // Histogram agrees with the Welford stats.
        assert_eq!(r.detail.response_histogram.count(), r.measured_jobs);
        assert!(
            (r.detail.response_histogram.mean() - r.mean_response).abs() < 1e-9,
            "histogram mean must match"
        );
        // Quantiles are ordered and bracket the mean sensibly.
        let p50 = r.detail.response_quantile(0.5);
        let p99 = r.detail.response_quantile(0.99);
        assert!(p50 <= p99);
        assert!(p99 <= r.response.max());
    }

    #[test]
    fn herding_shows_up_in_peak_occupancy() {
        let cfg = SimConfig::builder()
            .servers(16)
            .lambda(0.9)
            .arrivals(60_000)
            .seed(24)
            .build();
        let info = InfoSpec::Periodic { period: 30.0 };
        let greedy = run(&cfg, &ArrivalSpec::Poisson, &info, &PolicySpec::Greedy);
        let li = run(
            &cfg,
            &ArrivalSpec::Poisson,
            &info,
            &PolicySpec::BasicLi { lambda: 0.9 },
        );
        assert!(
            greedy.detail.peak_jobs_in_system() > 2.0 * li.detail.peak_jobs_in_system(),
            "herding peak {} should dwarf LI peak {}",
            greedy.detail.peak_jobs_in_system(),
            li.detail.peak_jobs_in_system()
        );
    }

    #[test]
    fn work_stealing_helps_oblivious_random() {
        let mut builder = SimConfig::builder();
        let base = builder.servers(10).lambda(0.8).arrivals(60_000).seed(17);
        let plain = run(
            &base.build(),
            &ArrivalSpec::Poisson,
            &InfoSpec::Fresh,
            &PolicySpec::Random,
        );
        let stealing = run(
            &base.work_stealing(2).build(),
            &ArrivalSpec::Poisson,
            &InfoSpec::Fresh,
            &PolicySpec::Random,
        );
        assert!(
            stealing.mean_response < plain.mean_response * 0.7,
            "stealing {} should clearly beat plain random {}",
            stealing.mean_response,
            plain.mean_response
        );
        assert_eq!(stealing.generated, 60_000);
    }

    #[test]
    fn hetero_li_beats_capacity_blind_li() {
        // Half the servers are 1.6x, half 0.4x: a capacity-blind policy
        // balances queue lengths and overloads the slow machines.
        let caps: Vec<f64> = (0..10).map(|i| if i < 5 { 1.6 } else { 0.4 }).collect();
        let cfg = SimConfig::builder()
            .capacities(caps.clone())
            .lambda(0.7)
            .arrivals(80_000)
            .seed(18)
            .build();
        let info = InfoSpec::Periodic { period: 2.0 };
        let blind = run(
            &cfg,
            &ArrivalSpec::Poisson,
            &info,
            &PolicySpec::BasicLi { lambda: 0.7 },
        );
        let aware = run(
            &cfg,
            &ArrivalSpec::Poisson,
            &info,
            &PolicySpec::HeteroLi {
                lambda: 0.7,
                capacities: caps,
            },
        );
        assert!(
            aware.mean_response < blind.mean_response,
            "capacity-aware {} should beat capacity-blind {}",
            aware.mean_response,
            blind.mean_response
        );
    }

    #[test]
    fn adaptive_li_approaches_oracle_li() {
        let cfg = SimConfig::builder()
            .servers(20)
            .lambda(0.9)
            .arrivals(120_000)
            .seed(19)
            .build();
        let info = InfoSpec::Periodic { period: 10.0 };
        let oracle = run(
            &cfg,
            &ArrivalSpec::Poisson,
            &info,
            &PolicySpec::BasicLi { lambda: 0.9 },
        );
        let adaptive = run(
            &cfg,
            &ArrivalSpec::Poisson,
            &info,
            &PolicySpec::AdaptiveLi {
                alpha: 0.01,
                warmup: 1000,
            },
        );
        let gap = (adaptive.mean_response - oracle.mean_response) / oracle.mean_response;
        assert!(
            gap < 0.1,
            "adaptive {} should be within 10% of oracle {}",
            adaptive.mean_response,
            oracle.mean_response
        );
    }

    fn overload_cfg(seed: u64) -> SimConfigBuilder {
        let mut b = SimConfig::builder();
        b.servers(8).lambda(0.95).arrivals(30_000).seed(seed);
        b
    }

    #[test]
    fn queue_cap_rejects_and_conserves() {
        let cfg = overload_cfg(41).queue_cap(2).build();
        let r = run(
            &cfg,
            &ArrivalSpec::Poisson,
            &InfoSpec::Fresh,
            &PolicySpec::Random,
        );
        assert!(r.overload.rejected > 0, "cap 2 at load 0.95 must bounce");
        assert_eq!(r.overload.reneged, 0);
        assert_eq!(r.overload.retries, 0, "no retry configured");
        assert_eq!(
            r.overload.abandoned, r.overload.rejected,
            "without retries every bounce is terminal"
        );
        // Every generated job either completed on some server or was
        // abandoned at admission.
        assert_eq!(
            r.detail.per_server_completed.iter().sum::<u64>() + r.overload.abandoned,
            r.generated,
        );
        assert!(r.goodput() < r.offered_throughput());
        // Shedding keeps waits short: mean response beats the uncapped run.
        let uncapped = run(
            &overload_cfg(41).build(),
            &ArrivalSpec::Poisson,
            &InfoSpec::Fresh,
            &PolicySpec::Random,
        );
        assert!(r.mean_response < uncapped.mean_response);
        assert!(uncapped.overload.is_zero());
    }

    #[test]
    fn deadlines_renege_waiting_jobs() {
        let cfg = overload_cfg(42).deadline(1.0).build();
        let r = run(
            &cfg,
            &ArrivalSpec::Poisson,
            &InfoSpec::Fresh,
            &PolicySpec::Random,
        );
        assert!(
            r.overload.reneged > 0,
            "1s patience at load 0.95 must renege"
        );
        assert_eq!(r.overload.rejected, 0, "no cap configured");
        assert_eq!(r.overload.abandoned, r.overload.reneged);
        assert_eq!(
            r.detail.per_server_completed.iter().sum::<u64>() + r.overload.abandoned,
            r.generated,
        );
        // A reneged job never reports a response time.
        assert!(r.measured_jobs < r.generated);
        // Jobs that did complete waited less than the patience bound, so the
        // measured mean must beat the uncontrolled run's.
        let free = run(
            &overload_cfg(42).build(),
            &ArrivalSpec::Poisson,
            &InfoSpec::Fresh,
            &PolicySpec::Random,
        );
        assert!(r.mean_response < free.mean_response);
    }

    #[test]
    fn retry_orbit_reoffers_bounced_jobs() {
        let retry = RetrySpec {
            max_attempts: 5,
            base: 0.5,
            cap: 8.0,
        };
        let cfg = overload_cfg(43).queue_cap(2).retry(retry).build();
        let r = run(
            &cfg,
            &ArrivalSpec::Poisson,
            &InfoSpec::Fresh,
            &PolicySpec::Random,
        );
        assert!(r.overload.retries > 0, "bounced jobs must re-enter");
        // Both conservation laws hold exactly.
        assert_eq!(
            r.overload.rejected + r.overload.reneged,
            r.overload.retries + r.overload.abandoned,
        );
        assert_eq!(
            r.detail.per_server_completed.iter().sum::<u64>() + r.overload.abandoned,
            r.generated,
        );
        // Retries rescue most bounced jobs, so fewer are lost than in the
        // no-retry run — and more admission attempts are made overall.
        let no_retry = run(
            &overload_cfg(43).queue_cap(2).build(),
            &ArrivalSpec::Poisson,
            &InfoSpec::Fresh,
            &PolicySpec::Random,
        );
        assert!(r.overload.abandoned < no_retry.overload.abandoned);
        assert!(r.overload.retry_amplification(r.generated) > 1.0);
        assert!(r.goodput() > no_retry.goodput());
    }

    #[test]
    fn untriggered_controls_are_bit_identical() {
        // Controls set so loose they never fire (cap above any backlog,
        // patience beyond any wait, retries armed but never drawn) must
        // replay the uncontrolled trajectory bit for bit: the retry stream
        // is forked unconditionally, renege checks consume no randomness,
        // and admission under a slack cap is plain enqueue.
        let plain = run(
            &quick_cfg(44),
            &ArrivalSpec::Poisson,
            &InfoSpec::Periodic { period: 5.0 },
            &PolicySpec::BasicLi { lambda: 0.5 },
        );
        let mut b = SimConfig::builder();
        b.servers(10)
            .lambda(0.5)
            .arrivals(30_000)
            .seed(44)
            .queue_cap(1_000_000)
            .deadline(1e9)
            .retry(RetrySpec {
                max_attempts: 5,
                base: 1.0,
                cap: 10.0,
            });
        let guarded = run(
            &b.build(),
            &ArrivalSpec::Poisson,
            &InfoSpec::Periodic { period: 5.0 },
            &PolicySpec::BasicLi { lambda: 0.5 },
        );
        assert_eq!(
            plain.mean_response.to_bits(),
            guarded.mean_response.to_bits()
        );
        assert_eq!(plain.end_time.to_bits(), guarded.end_time.to_bits());
        assert!(guarded.overload.is_zero());
    }

    #[test]
    fn overload_runs_are_deterministic() {
        let retry = RetrySpec {
            max_attempts: 4,
            base: 0.25,
            cap: 4.0,
        };
        let mk = || {
            run(
                &overload_cfg(45)
                    .queue_cap(3)
                    .deadline(2.0)
                    .retry(retry)
                    .build(),
                &ArrivalSpec::Poisson,
                &InfoSpec::Periodic { period: 5.0 },
                &PolicySpec::BasicLi { lambda: 0.95 },
            )
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.mean_response.to_bits(), b.mean_response.to_bits());
        assert_eq!(a.end_time.to_bits(), b.end_time.to_bits());
        assert_eq!(a.overload, b.overload);
        assert!(a.overload.rejected > 0 || a.overload.reneged > 0);
    }

    #[test]
    fn guarded_policy_runs_and_can_trip() {
        // A greedy policy on a stale board herds; the guard must notice and
        // the run must still complete every job.
        let cfg = SimConfig::builder()
            .servers(16)
            .lambda(0.9)
            .arrivals(60_000)
            .seed(46)
            .build();
        let guarded = PolicySpec::Guarded {
            threshold: 2.0,
            cooldown: 50.0,
            inner: Box::new(PolicySpec::Greedy),
        };
        let info = InfoSpec::Periodic { period: 30.0 };
        let g = run(&cfg, &ArrivalSpec::Poisson, &info, &guarded);
        let naked = run(&cfg, &ArrivalSpec::Poisson, &info, &PolicySpec::Greedy);
        assert_eq!(g.generated, 60_000);
        assert_eq!(g.detail.per_server_completed.iter().sum::<u64>(), 60_000);
        assert!(
            g.detail.peak_jobs_in_system() < naked.detail.peak_jobs_in_system(),
            "breaking the herd must lower the backlog peak: guarded {} vs naked {}",
            g.detail.peak_jobs_in_system(),
            naked.detail.peak_jobs_in_system()
        );
    }

    #[test]
    fn disabled_resilience_wrappers_are_bit_identical() {
        // Hedged with h = 1 and a quarantine that never fires must replay
        // the naked policy's trajectory bit for bit (same RNG draw order).
        let cfg = quick_cfg(41);
        let info = InfoSpec::Periodic { period: 5.0 };
        let naked = run(
            &cfg,
            &ArrivalSpec::Poisson,
            &info,
            &PolicySpec::BasicLi { lambda: 0.5 },
        );
        let hedged = run(
            &cfg,
            &ArrivalSpec::Poisson,
            &info,
            &PolicySpec::Hedged {
                h: 1,
                inner: Box::new(PolicySpec::BasicLi { lambda: 0.5 }),
            },
        );
        assert_eq!(
            naked.mean_response.to_bits(),
            hedged.mean_response.to_bits()
        );
        assert_eq!(naked.end_time.to_bits(), hedged.end_time.to_bits());
        assert!(hedged.resilience.is_zero());
        let quarantined = run(
            &cfg,
            &ArrivalSpec::Poisson,
            &info,
            &PolicySpec::Quarantined {
                window: 1e12,
                backoff: 1e12,
                inner: Box::new(PolicySpec::BasicLi { lambda: 0.5 }),
            },
        );
        assert_eq!(
            naked.mean_response.to_bits(),
            quarantined.mean_response.to_bits()
        );
        assert!(quarantined.resilience.is_zero());
    }

    #[test]
    fn hedged_dispatch_conserves_jobs_and_cancels_losers() {
        let cfg = quick_cfg(42);
        let r = run(
            &cfg,
            &ArrivalSpec::Poisson,
            &InfoSpec::Periodic { period: 10.0 },
            &PolicySpec::Hedged {
                h: 2,
                inner: Box::new(PolicySpec::BasicLi { lambda: 0.5 }),
            },
        );
        assert_eq!(r.generated, 30_000);
        assert_eq!(
            r.detail.per_server_completed.iter().sum::<u64>(),
            30_000,
            "each hedged job completes exactly once"
        );
        assert!(r.resilience.hedges_issued > 0);
        assert_eq!(
            r.resilience.hedges_cancelled, r.resilience.hedges_issued,
            "every replica is cancelled — either it loses, or it wins and \
             displaces exactly one sibling"
        );
        assert!(
            r.resilience.hedges_won > 0,
            "with a stale board the second pick must sometimes finish first"
        );
        assert!(r.resilience.hedges_won <= r.resilience.hedges_issued);
    }

    #[test]
    fn hedge_misconfigurations_error_instead_of_panicking() {
        let hedged = |h| PolicySpec::Hedged {
            h,
            inner: Box::new(PolicySpec::BasicLi { lambda: 0.5 }),
        };
        let info = InfoSpec::Periodic { period: 5.0 };
        // h exceeding the cluster size (quick_cfg has 10 servers).
        let too_big = run_simulation(&quick_cfg(1), &ArrivalSpec::Poisson, &info, &hedged(11));
        assert!(matches!(too_big, Err(SimError::Config(_))), "{too_big:?}");
        // Hedging cannot share job ownership with the overload controls...
        let capped = SimConfig::builder()
            .servers(10)
            .lambda(0.5)
            .arrivals(1_000)
            .seed(1)
            .queue_cap(4)
            .build();
        let clash = run_simulation(&capped, &ArrivalSpec::Poisson, &info, &hedged(2));
        assert!(matches!(clash, Err(SimError::Config(_))), "{clash:?}");
        // ...nor with work stealing or crash faults.
        let stealing = SimConfig::builder()
            .servers(10)
            .lambda(0.5)
            .arrivals(1_000)
            .seed(1)
            .work_stealing(2)
            .build();
        let stolen = run_simulation(&stealing, &ArrivalSpec::Poisson, &info, &hedged(2));
        assert!(matches!(stolen, Err(SimError::Config(_))), "{stolen:?}");
        let crashy = faulty_cfg(1, FaultSpec::crash(100.0, 10.0));
        let crashed = run_simulation(&crashy, &ArrivalSpec::Poisson, &info, &hedged(2));
        assert!(matches!(crashed, Err(SimError::Config(_))), "{crashed:?}");
    }

    #[test]
    fn partition_and_corruption_need_a_board_model() {
        let partitioned = faulty_cfg(1, FaultSpec::partition(50.0, 10.0, 0.3));
        let err = run_simulation(
            &partitioned,
            &ArrivalSpec::Poisson,
            &InfoSpec::Fresh,
            &PolicySpec::Random,
        );
        assert!(matches!(err, Err(SimError::Config(_))), "{err:?}");
        let corrupted = faulty_cfg(1, FaultSpec::corrupt(0.3));
        let err = run_simulation(
            &corrupted,
            &ArrivalSpec::Poisson,
            &InfoSpec::Fresh,
            &PolicySpec::Random,
        );
        assert!(matches!(err, Err(SimError::Config(_))), "{err:?}");
    }

    #[test]
    fn churn_conserves_jobs() {
        let cfg = faulty_cfg(43, FaultSpec::churn(150.0, 30.0));
        let r = run(
            &cfg,
            &ArrivalSpec::Poisson,
            &InfoSpec::Periodic { period: 5.0 },
            &PolicySpec::BasicLi { lambda: 0.5 },
        );
        assert!(
            r.faults.crashes > 0,
            "membership churn reuses the crash counters"
        );
        assert!(
            r.faults.redispatched > 0,
            "a departing server hands its queue off"
        );
        assert_eq!(
            r.detail.per_server_completed.iter().sum::<u64>(),
            30_000,
            "every job survives membership churn"
        );
    }

    #[test]
    fn resilience_faults_are_deterministic() {
        let mut faults = FaultSpec::partition(60.0, 20.0, 0.3);
        faults.corrupt = FaultSpec::corrupt(0.2).corrupt;
        let cfg = faulty_cfg(44, faults);
        let spec = PolicySpec::Quarantined {
            window: 15.0,
            backoff: 10.0,
            inner: Box::new(PolicySpec::BasicLi { lambda: 0.5 }),
        };
        let info = InfoSpec::Periodic { period: 5.0 };
        let a = run(&cfg, &ArrivalSpec::Poisson, &info, &spec);
        let b = run(&cfg, &ArrivalSpec::Poisson, &info, &spec);
        assert_eq!(a.mean_response.to_bits(), b.mean_response.to_bits());
        assert_eq!(a.resilience, b.resilience);
        assert!(a.resilience.partition_seconds > 0.0);
        assert!(a.resilience.corrupted_reports > 0);
        assert!(
            a.resilience.quarantine_ejections > 0,
            "a 20-time-unit partition must age someone past a 15-unit window"
        );
        assert!(a.resilience.quarantine_readmissions <= a.resilience.quarantine_ejections);
        assert_eq!(
            a.detail.per_server_completed.iter().sum::<u64>(),
            30_000,
            "partitions hide servers from the board but never lose jobs"
        );
    }

    #[test]
    fn partitions_degrade_naive_li_and_hedging_recovers() {
        let mk = |policy: &PolicySpec, faults: FaultSpec, seed: u64| {
            run(
                &SimConfig::builder()
                    .servers(16)
                    .lambda(0.6)
                    .arrivals(60_000)
                    .seed(seed)
                    .faults(faults)
                    .build(),
                &ArrivalSpec::Poisson,
                &InfoSpec::Periodic { period: 10.0 },
                policy,
            )
            .mean_response
        };
        let naive = PolicySpec::BasicLi { lambda: 0.6 };
        let hedged = PolicySpec::Hedged {
            h: 2,
            inner: Box::new(naive.clone()),
        };
        let part = || FaultSpec::partition(50.0, 25.0, 0.25);
        let clean: f64 = (50..53)
            .map(|s| mk(&naive, FaultSpec::none(), s))
            .sum::<f64>()
            / 3.0;
        let blind: f64 = (50..53).map(|s| mk(&naive, part(), s)).sum::<f64>() / 3.0;
        let recovered: f64 = (50..53).map(|s| mk(&hedged, part(), s)).sum::<f64>() / 3.0;
        assert!(
            blind > clean,
            "frozen board entries must hurt naive LI: partitioned {blind} vs clean {clean}"
        );
        // First-completion-wins erases the cost of a pick trapped by a
        // frozen entry — the sibling on a visible server finishes first.
        // (Quarantine, by contrast, does NOT recover partition damage here:
        // hidden servers are healthy, so ejecting them burns capacity. The
        // ext_resilience bench records that comparison.)
        assert!(
            recovered < blind,
            "hedging must recover the partition loss: hedged {recovered} vs naive {blind}"
        );
    }

    #[test]
    fn response_times_are_at_least_service_times() {
        // With deterministic service of 1, every response is >= 1.
        let cfg = SimConfig::builder()
            .servers(4)
            .lambda(0.3)
            .arrivals(5_000)
            .service(staleload_sim::Dist::constant(1.0))
            .seed(16)
            .build();
        let r = run(
            &cfg,
            &ArrivalSpec::Poisson,
            &InfoSpec::Fresh,
            &PolicySpec::Greedy,
        );
        assert!(
            r.response.min() >= 1.0 - 1e-9,
            "min response {}",
            r.response.min()
        );
    }
}
