//! The discrete-event simulation loop.

use staleload_cluster::{Cluster, Job, ServerId};
use staleload_info::InfoSpec;
use staleload_policies::PolicySpec;
use staleload_sim::{EventQueue, OnlineStats, SimRng};
use staleload_workloads::ArrivalProcess;

use crate::{ArrivalSpec, RunDetail, SimConfig};

/// The outcome of one seeded simulation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Mean response (sojourn) time over measured jobs.
    pub mean_response: f64,
    /// Full response-time statistics over measured jobs.
    pub response: OnlineStats,
    /// Number of jobs contributing to the metric.
    pub measured_jobs: u64,
    /// Jobs generated in total (≥ the configured count only for
    /// update-on-access experiments that scale work per client).
    pub generated: u64,
    /// Simulated time of the last departure.
    pub end_time: f64,
    /// Delayed-view queries answered inexactly (should be 0; > 0 means the
    /// history window was too small for the delay distribution).
    pub history_misses: u64,
    /// Tail/fairness/occupancy metrics (see [`RunDetail`]).
    pub detail: RunDetail,
}

/// Runs one simulation: `cfg.arrivals` jobs through `cfg.servers` FIFO
/// queues, routed by `policy` using views produced by `info`.
///
/// Jobs arriving during the warm-up fraction are excluded from the metric;
/// after the last arrival the system drains so every measured job completes.
///
/// Determinism: the run is a pure function of the configuration (including
/// `cfg.seed`). Independent RNG streams are forked for the arrival process,
/// service times, the policy, and the information model, so e.g. changing
/// the policy does not perturb the arrival pattern.
///
/// # Panics
///
/// Panics if the configuration is inconsistent (e.g. a bursty arrival spec
/// whose burst cannot attain the required mean inter-request time).
pub fn run_simulation(
    cfg: &SimConfig,
    arrivals: &ArrivalSpec,
    info: &InfoSpec,
    policy: &PolicySpec,
) -> RunResult {
    let mut master = SimRng::from_seed(cfg.seed);
    let mut arrival_rng = master.fork();
    let mut service_rng = master.fork();
    let mut policy_rng = master.fork();
    let mut model_rng = master.fork();

    let n = cfg.servers;
    let mut cluster = match &cfg.capacities {
        Some(caps) => Cluster::with_capacities(caps),
        None => Cluster::new(n),
    };
    if let Some(window) = info.history_window() {
        cluster.enable_history(window);
    }

    let clients = arrivals.clients();
    let mut model = info.build(n, clients);
    let mut policy = policy.build();

    let total_rate = cfg.total_rate();
    let mut process = match *arrivals {
        ArrivalSpec::Poisson => ArrivalProcess::poisson(total_rate),
        ArrivalSpec::PoissonClients { clients } => {
            ArrivalProcess::poisson_clients(clients, total_rate)
        }
        ArrivalSpec::BurstyClients { clients, burst } => {
            let mean_inter_request = clients as f64 / total_rate;
            ArrivalProcess::bursty_clients(clients, mean_inter_request, burst, &mut arrival_rng)
                .expect("bursty arrival spec inconsistent with the configured load")
        }
        ArrivalSpec::Mmpp { rate_ratio, high_fraction, cycle_mean } => {
            assert!(rate_ratio >= 1.0, "rate ratio must be at least 1, got {rate_ratio}");
            assert!(
                (0.0..1.0).contains(&high_fraction) && high_fraction > 0.0,
                "high fraction must be in (0, 1), got {high_fraction}"
            );
            // Solve the low rate so the sojourn-weighted mean is λ·n.
            let low = total_rate / (1.0 - high_fraction + high_fraction * rate_ratio);
            let high = rate_ratio * low;
            ArrivalProcess::mmpp(
                high,
                high_fraction * cycle_mean,
                low,
                (1.0 - high_fraction) * cycle_mean,
            )
            .expect("MMPP arrival spec inconsistent with the configured load")
        }
    };

    let warmup = cfg.warmup_jobs();
    let mut departures: EventQueue<ServerId> = EventQueue::with_capacity(n);
    let mut response = OnlineStats::new();
    let mut detail = RunDetail::new(n);
    let mut next_id: u64 = 0;
    let mut next_arrival: Option<(f64, usize)> = Some(process.next(&mut arrival_rng));
    let mut end_time: f64 = 0.0;

    loop {
        let arrival_time = next_arrival.map(|(t, _)| t);
        let departure_time = departures.peek_time();
        let system_next = match (arrival_time, departure_time) {
            (None, None) => break,
            (Some(a), None) => a,
            (None, Some(d)) => d,
            (Some(a), Some(d)) => a.min(d),
        };

        // Let the information model catch up first (ties: model before
        // system events, so a board refreshed "at" an arrival's instant is
        // visible to that arrival).
        while let Some(t) = model.next_event() {
            if t <= system_next {
                model.on_event(t, &cluster);
            } else {
                break;
            }
        }

        let take_arrival = match (arrival_time, departure_time) {
            (Some(a), Some(d)) => a <= d,
            (Some(_), None) => true,
            _ => false,
        };

        if take_arrival {
            let (t, client) = next_arrival.take().expect("arrival is present");
            let service = cfg.service.sample(&mut service_rng);
            policy.observe_arrival(t);
            let server = {
                let view = model.view(t, client, &mut cluster, &mut model_rng);
                policy.select_sized(&view, service, &mut policy_rng)
            };
            let job = Job::new(next_id, t, service);
            next_id += 1;
            if let Some(dep) = cluster.enqueue(server, job, t) {
                departures.push(dep, server);
            }
            model.after_placement(t, client, &cluster);
            detail.jobs_in_system.update(t, cluster.in_system() as f64);
            if next_id < cfg.arrivals {
                next_arrival = Some(process.next(&mut arrival_rng));
            }
        } else {
            let (t, server) = departures.pop().expect("departure is present");
            let (job, next) = cluster.complete(server, t);
            match next {
                Some(dep) => departures.push(dep, server),
                None => {
                    // Receiver-driven rebalancing (extension): a server
                    // going idle pulls a waiting job from the longest
                    // queue.
                    if let Some(min_victim) = cfg.work_stealing {
                        if let Some(dep) = cluster.steal_for_idle(server, t, min_victim) {
                            departures.push(dep, server);
                        }
                    }
                }
            }
            if job.id >= warmup {
                response.record(t - job.arrival);
                detail.response_histogram.record(t - job.arrival);
            }
            detail.jobs_in_system.update(t, cluster.in_system() as f64);
            end_time = t;
        }
    }

    debug_assert_eq!(cluster.in_system(), 0, "drain must empty the system");
    for s in 0..n {
        detail.per_server_completed[s] = cluster.completed(s);
        detail.per_server_busy[s] = cluster.busy_time(s);
    }
    RunResult {
        mean_response: response.mean(),
        response,
        measured_jobs: response.count(),
        generated: next_id,
        end_time,
        history_misses: cluster.history_misses(),
        detail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(seed: u64) -> SimConfig {
        SimConfig::builder()
            .servers(10)
            .lambda(0.5)
            .arrivals(30_000)
            .seed(seed)
            .build()
    }

    #[test]
    fn random_split_matches_mm1_theory() {
        // Random splitting of Poisson(λ·n) over n servers makes each an
        // independent M/M/1 at load λ: mean response = 1/(1-λ) = 2 at λ=0.5.
        let cfg = quick_cfg(11);
        let r = run_simulation(&cfg, &ArrivalSpec::Poisson, &InfoSpec::Fresh, &PolicySpec::Random);
        assert!(
            (r.mean_response - 2.0).abs() < 0.15,
            "mean response {} should be near 2.0",
            r.mean_response
        );
        assert_eq!(r.measured_jobs, 27_000);
        assert_eq!(r.generated, 30_000);
        assert_eq!(r.history_misses, 0);
    }

    #[test]
    fn fresh_greedy_beats_random() {
        let cfg = quick_cfg(12);
        let greedy =
            run_simulation(&cfg, &ArrivalSpec::Poisson, &InfoSpec::Fresh, &PolicySpec::Greedy);
        let random =
            run_simulation(&cfg, &ArrivalSpec::Poisson, &InfoSpec::Fresh, &PolicySpec::Random);
        assert!(
            greedy.mean_response < random.mean_response,
            "greedy {} should beat random {}",
            greedy.mean_response,
            random.mean_response
        );
    }

    #[test]
    fn identical_seeds_are_bit_identical() {
        let cfg = quick_cfg(13);
        let spec = PolicySpec::BasicLi { lambda: 0.5 };
        let info = InfoSpec::Periodic { period: 5.0 };
        let a = run_simulation(&cfg, &ArrivalSpec::Poisson, &info, &spec);
        let b = run_simulation(&cfg, &ArrivalSpec::Poisson, &info, &spec);
        assert_eq!(a.mean_response.to_bits(), b.mean_response.to_bits());
        assert_eq!(a.end_time.to_bits(), b.end_time.to_bits());
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_simulation(
            &quick_cfg(1),
            &ArrivalSpec::Poisson,
            &InfoSpec::Fresh,
            &PolicySpec::Random,
        );
        let b = run_simulation(
            &quick_cfg(2),
            &ArrivalSpec::Poisson,
            &InfoSpec::Fresh,
            &PolicySpec::Random,
        );
        assert_ne!(a.mean_response.to_bits(), b.mean_response.to_bits());
    }

    #[test]
    fn continuous_model_reports_no_history_misses() {
        let cfg = quick_cfg(14);
        let info = InfoSpec::Continuous {
            delay: staleload_info::DelaySpec::Exponential { mean: 2.0 },
            knowledge: staleload_info::AgeKnowledge::Actual,
        };
        let r = run_simulation(&cfg, &ArrivalSpec::Poisson, &info, &PolicySpec::KSubset { k: 2 });
        assert_eq!(r.history_misses, 0, "window must cover the delay distribution");
        assert!(r.mean_response > 1.0);
    }

    #[test]
    fn update_on_access_runs_with_many_clients() {
        let cfg = SimConfig::builder()
            .servers(10)
            .lambda(0.5)
            .arrivals(20_000)
            .seed(15)
            .build();
        let r = run_simulation(
            &cfg,
            &ArrivalSpec::PoissonClients { clients: 25 },
            &InfoSpec::UpdateOnAccess,
            &PolicySpec::BasicLi { lambda: 0.5 },
        );
        assert_eq!(r.generated, 20_000);
        assert!(r.mean_response > 0.9);
    }

    #[test]
    fn mmpp_arrivals_keep_the_configured_mean_load() {
        let cfg = SimConfig::builder()
            .servers(10)
            .lambda(0.5)
            .arrivals(120_000)
            .seed(25)
            .build();
        let spec = ArrivalSpec::Mmpp { rate_ratio: 4.0, high_fraction: 0.2, cycle_mean: 20.0 };
        let r = run_simulation(&cfg, &spec, &InfoSpec::Fresh, &PolicySpec::Random);
        // Realized horizon matches arrivals / (λ·n) within a few percent.
        let expect = 120_000.0 / 5.0;
        assert!(
            (r.end_time - expect).abs() / expect < 0.06,
            "horizon {} vs expected {expect}",
            r.end_time
        );
        // Burstier arrivals queue more than plain Poisson at the same load.
        let poisson =
            run_simulation(&cfg, &ArrivalSpec::Poisson, &InfoSpec::Fresh, &PolicySpec::Random);
        assert!(
            r.mean_response > poisson.mean_response,
            "MMPP {} should exceed Poisson {}",
            r.mean_response,
            poisson.mean_response
        );
    }

    #[test]
    fn detail_metrics_are_consistent() {
        let cfg = quick_cfg(23);
        let r = run_simulation(&cfg, &ArrivalSpec::Poisson, &InfoSpec::Fresh, &PolicySpec::Random);
        // Little's law: E[N] = (total arrival rate) · E[T] over the run.
        let rate = r.generated as f64 / r.end_time;
        let little = rate * r.mean_response;
        let measured_n = r.detail.mean_jobs_in_system(r.end_time);
        assert!(
            (measured_n - little).abs() / little < 0.1,
            "Little's law: N {measured_n} vs lambda*T {little}"
        );
        // Utilization per server ≈ λ = 0.5.
        let utils = r.detail.utilizations(r.end_time);
        let mean_util = utils.iter().sum::<f64>() / utils.len() as f64;
        assert!((mean_util - 0.5).abs() < 0.05, "mean utilization {mean_util}");
        // Random placement over identical servers is fair.
        assert!(r.detail.throughput_fairness() > 0.99);
        // Histogram agrees with the Welford stats.
        assert_eq!(r.detail.response_histogram.count(), r.measured_jobs);
        assert!(
            (r.detail.response_histogram.mean() - r.mean_response).abs() < 1e-9,
            "histogram mean must match"
        );
        // Quantiles are ordered and bracket the mean sensibly.
        let p50 = r.detail.response_quantile(0.5);
        let p99 = r.detail.response_quantile(0.99);
        assert!(p50 <= p99);
        assert!(p99 <= r.response.max());
    }

    #[test]
    fn herding_shows_up_in_peak_occupancy() {
        let cfg = SimConfig::builder()
            .servers(16)
            .lambda(0.9)
            .arrivals(60_000)
            .seed(24)
            .build();
        let info = InfoSpec::Periodic { period: 30.0 };
        let greedy = run_simulation(&cfg, &ArrivalSpec::Poisson, &info, &PolicySpec::Greedy);
        let li = run_simulation(
            &cfg,
            &ArrivalSpec::Poisson,
            &info,
            &PolicySpec::BasicLi { lambda: 0.9 },
        );
        assert!(
            greedy.detail.peak_jobs_in_system() > 2.0 * li.detail.peak_jobs_in_system(),
            "herding peak {} should dwarf LI peak {}",
            greedy.detail.peak_jobs_in_system(),
            li.detail.peak_jobs_in_system()
        );
    }

    #[test]
    fn work_stealing_helps_oblivious_random() {
        let mut builder = SimConfig::builder();
        let base = builder.servers(10).lambda(0.8).arrivals(60_000).seed(17);
        let plain = run_simulation(
            &base.build(),
            &ArrivalSpec::Poisson,
            &InfoSpec::Fresh,
            &PolicySpec::Random,
        );
        let stealing = run_simulation(
            &base.work_stealing(2).build(),
            &ArrivalSpec::Poisson,
            &InfoSpec::Fresh,
            &PolicySpec::Random,
        );
        assert!(
            stealing.mean_response < plain.mean_response * 0.7,
            "stealing {} should clearly beat plain random {}",
            stealing.mean_response,
            plain.mean_response
        );
        assert_eq!(stealing.generated, 60_000);
    }

    #[test]
    fn hetero_li_beats_capacity_blind_li() {
        // Half the servers are 1.6x, half 0.4x: a capacity-blind policy
        // balances queue lengths and overloads the slow machines.
        let caps: Vec<f64> = (0..10).map(|i| if i < 5 { 1.6 } else { 0.4 }).collect();
        let cfg = SimConfig::builder()
            .capacities(caps.clone())
            .lambda(0.7)
            .arrivals(80_000)
            .seed(18)
            .build();
        let info = InfoSpec::Periodic { period: 2.0 };
        let blind = run_simulation(
            &cfg,
            &ArrivalSpec::Poisson,
            &info,
            &PolicySpec::BasicLi { lambda: 0.7 },
        );
        let aware = run_simulation(
            &cfg,
            &ArrivalSpec::Poisson,
            &info,
            &PolicySpec::HeteroLi { lambda: 0.7, capacities: caps },
        );
        assert!(
            aware.mean_response < blind.mean_response,
            "capacity-aware {} should beat capacity-blind {}",
            aware.mean_response,
            blind.mean_response
        );
    }

    #[test]
    fn adaptive_li_approaches_oracle_li() {
        let cfg = SimConfig::builder()
            .servers(20)
            .lambda(0.9)
            .arrivals(120_000)
            .seed(19)
            .build();
        let info = InfoSpec::Periodic { period: 10.0 };
        let oracle = run_simulation(
            &cfg,
            &ArrivalSpec::Poisson,
            &info,
            &PolicySpec::BasicLi { lambda: 0.9 },
        );
        let adaptive = run_simulation(
            &cfg,
            &ArrivalSpec::Poisson,
            &info,
            &PolicySpec::AdaptiveLi { alpha: 0.01, warmup: 1000 },
        );
        let gap = (adaptive.mean_response - oracle.mean_response) / oracle.mean_response;
        assert!(
            gap < 0.1,
            "adaptive {} should be within 10% of oracle {}",
            adaptive.mean_response,
            oracle.mean_response
        );
    }

    #[test]
    fn response_times_are_at_least_service_times() {
        // With deterministic service of 1, every response is >= 1.
        let cfg = SimConfig::builder()
            .servers(4)
            .lambda(0.3)
            .arrivals(5_000)
            .service(staleload_sim::Dist::constant(1.0))
            .seed(16)
            .build();
        let r = run_simulation(&cfg, &ArrivalSpec::Poisson, &InfoSpec::Fresh, &PolicySpec::Greedy);
        assert!(r.response.min() >= 1.0 - 1e-9, "min response {}", r.response.min());
    }
}
