//! Typed errors for the simulation driver and experiment runner.

use std::fmt;

use staleload_sim::SchedError;

use crate::ConfigError;

/// An error from [`crate::run_simulation`] or [`crate::Experiment`].
///
/// Configuration problems that previously aborted the process through
/// `assert!`/`expect` surface here instead, so a batch driver can report
/// one bad point and keep going.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The run was asked for an inconsistent or out-of-range
    /// configuration.
    Config(ConfigError),
    /// A trial panicked; the panic was caught and the remaining trials
    /// ran to completion.
    TrialPanicked {
        /// Zero-based trial index within the experiment.
        trial: usize,
        /// The trial's derived seed (for standalone reproduction).
        seed: u64,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// Every trial of an experiment failed, so there is nothing to
    /// aggregate.
    NoSuccessfulTrials {
        /// Number of trials attempted.
        trials: usize,
        /// The first failure, as a human-readable message.
        first_error: String,
    },
    /// The engine computed an invalid event time (NaN or negative) — a
    /// malformed distribution or a numeric bug, caught at the scheduler
    /// boundary instead of panicking mid-trial.
    Scheduler(SchedError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "{e}"),
            SimError::TrialPanicked {
                trial,
                seed,
                message,
            } => {
                write!(f, "trial {trial} (seed {seed:#x}) panicked: {message}")
            }
            SimError::NoSuccessfulTrials {
                trials,
                first_error,
            } => {
                write!(f, "all {trials} trials failed; first error: {first_error}")
            }
            SimError::Scheduler(e) => write!(f, "invalid event time: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Config(e) => Some(e),
            SimError::Scheduler(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

impl From<SchedError> for SimError {
    fn from(e: SchedError) -> Self {
        SimError::Scheduler(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        let e = SimError::TrialPanicked {
            trial: 3,
            seed: 0xab,
            message: "boom".into(),
        };
        let s = e.to_string();
        assert!(
            s.contains("trial 3") && s.contains("0xab") && s.contains("boom"),
            "{s}"
        );
    }

    #[test]
    fn config_errors_convert() {
        let c = crate::SimConfig::builder()
            .servers(0)
            .try_build()
            .unwrap_err();
        let e: SimError = c.clone().into();
        assert_eq!(e, SimError::Config(c));
        assert!(std::error::Error::source(&e).is_some());
    }
}
