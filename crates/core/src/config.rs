//! Simulation configuration.

use std::fmt;

use serde::{Deserialize, Serialize};
use staleload_sim::{Dist, SchedulerKind};
use staleload_workloads::{BurstConfig, RetrySpec};

use crate::FaultSpec;

/// How jobs arrive at the system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalSpec {
    /// One merged Poisson stream of rate `λ·n` (the paper's default).
    Poisson,
    /// `clients` independent Poisson clients with total rate `λ·n`
    /// (update-on-access experiments; the mean inter-request time is
    /// `clients/(λ·n)`).
    PoissonClients {
        /// Number of load-generating clients.
        clients: usize,
    },
    /// `clients` independent bursty clients (§5.4).
    BurstyClients {
        /// Number of load-generating clients.
        clients: usize,
        /// Burst shape.
        burst: BurstConfig,
    },
    /// Aggregate-level burstiness (extension): a two-state
    /// Markov-modulated Poisson stream whose long-run mean rate still
    /// equals `λ·n`. During a high phase the rate is `rate_ratio` times
    /// the low phase's.
    Mmpp {
        /// High-phase/low-phase rate ratio (≥ 1).
        rate_ratio: f64,
        /// Long-run fraction of time in the high phase (in `(0, 1)`).
        high_fraction: f64,
        /// Mean duration of one high+low cycle in service-time units.
        cycle_mean: f64,
    },
}

impl ArrivalSpec {
    /// Number of distinct clients this spec simulates.
    pub fn clients(&self) -> usize {
        match *self {
            ArrivalSpec::Poisson | ArrivalSpec::Mmpp { .. } => 1,
            ArrivalSpec::PoissonClients { clients }
            | ArrivalSpec::BurstyClients { clients, .. } => clients,
        }
    }
}

/// Which state representation the engine runs a trial with (ISSUE 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum EngineMode {
    /// The per-server event loop: one object per server, one event per
    /// job movement. Supports every policy/info/fault/overload knob.
    #[default]
    PerServer,
    /// The population-level (mean-field) fast path: the cluster is a
    /// matrix of queue-length counts, exact in distribution for symmetric
    /// policies (Random, KSubset, Greedy, Basic LI) over a uniform
    /// snapshot view (`fresh`/`periodic` info) with exponential service
    /// and Poisson arrivals. O(1)–O(K) per event regardless of `n`, which
    /// is what makes n = 10^6 sweeps feasible.
    Population,
}

impl std::str::FromStr for EngineMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "per-server" | "perserver" => Ok(EngineMode::PerServer),
            "population" | "mean-field" | "meanfield" => Ok(EngineMode::Population),
            other => Err(format!(
                "unknown engine mode '{other}' (expected per-server or population)"
            )),
        }
    }
}

impl fmt::Display for EngineMode {
    /// Canonical CLI spelling; round-trips through [`FromStr`](std::str::FromStr).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EngineMode::PerServer => "per-server",
            EngineMode::Population => "population",
        })
    }
}

/// How the population engine draws routing decisions from a frozen
/// per-phase class distribution (ISSUE 9).
///
/// Both samplers draw from the same distribution, so they agree
/// statistically; they consume the RNG differently, so trajectories
/// differ bit-wise. `Scan` exists as the differential-testing reference
/// for the alias fast path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PopulationSampler {
    /// Walker/Vose alias table: O(1) per draw after an O(K) per-phase
    /// build (the default).
    #[default]
    Alias,
    /// Linear scan over class weights: O(K) per draw, no per-phase build.
    Scan,
}

impl std::str::FromStr for PopulationSampler {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "alias" => Ok(PopulationSampler::Alias),
            "scan" => Ok(PopulationSampler::Scan),
            other => Err(format!(
                "unknown population sampler '{other}' (expected alias or scan)"
            )),
        }
    }
}

impl fmt::Display for PopulationSampler {
    /// Canonical CLI spelling; round-trips through [`FromStr`](std::str::FromStr).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PopulationSampler::Alias => "alias",
            PopulationSampler::Scan => "scan",
        })
    }
}

/// Error constructing a [`SimConfig`] from invalid parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    what: String,
}

impl ConfigError {
    pub(crate) fn new(what: impl Into<String>) -> Self {
        Self { what: what.into() }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid simulation configuration: {}", self.what)
    }
}

impl std::error::Error for ConfigError {}

/// Parameters of one simulated system (paper §5 defaults unless changed).
///
/// Construct with [`SimConfig::builder`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of servers `n`.
    pub servers: usize,
    /// True per-server arrival rate λ as a fraction of service capacity.
    pub lambda: f64,
    /// Total jobs to generate.
    pub arrivals: u64,
    /// Fraction of jobs used to reach steady state (excluded from the
    /// metric).
    pub warmup_fraction: f64,
    /// Job-size distribution (mean 1 in the paper's units).
    pub service: Dist,
    /// Per-server service rates for a heterogeneous cluster (extension;
    /// `None` = all servers at rate 1, the paper's setting).
    pub capacities: Option<Vec<f64>>,
    /// Receiver-driven rebalancing (extension; paper §2 option 3): when a
    /// server goes idle it steals a waiting job from the longest queue if
    /// that queue holds at least this many jobs. `None` disables stealing.
    pub work_stealing: Option<u32>,
    /// Fault injection (extension): server crashes and lossy update
    /// channels. [`FaultSpec::none`] (the default) reproduces the
    /// fault-free simulator bit for bit.
    pub faults: FaultSpec,
    /// Overload control (extension): per-server bounded queues. A new
    /// arrival finding its target at this load is rejected instead of
    /// queued. `None` (the default) leaves queues unbounded and
    /// reproduces the uncontrolled simulator bit for bit.
    pub queue_cap: Option<u32>,
    /// Overload control (extension): per-job waiting deadline. A job
    /// still *waiting* (not yet in service) this long after its admission
    /// reneges — abandons the queue. `None` disables reneging.
    pub deadline: Option<f64>,
    /// Overload control (extension): retry orbit for rejected/reneged
    /// jobs; see [`RetrySpec`]. `None` makes rejection and reneging
    /// terminal.
    pub retry: Option<RetrySpec>,
    /// Pending-event-set backend for the engine's queues. Both backends
    /// produce bit-identical trajectories (same event order, same RNG
    /// draws); they differ only in speed. Default: [`SchedulerKind::Heap`].
    pub scheduler: SchedulerKind,
    /// Exact-mode capacity of the per-run response-time quantile sketch
    /// (extension, ISSUE 8): runs measuring at most this many jobs keep
    /// the exact multiset; larger runs compact onto the sketch's fixed
    /// log grid. Recording never draws randomness or schedules events,
    /// so this knob cannot change a trajectory — only how p99/p999 are
    /// summarized. Default: [`staleload_stats::TailSketch::DEFAULT_CAP`].
    pub sketch_cap: usize,
    /// State representation the engine runs with (ISSUE 9): the
    /// per-server event loop (default) or the population-level count
    /// matrix. Population mode is exact in distribution for the symmetric
    /// policy/info subset but draws the RNG differently, so trajectories
    /// are not bit-comparable across modes — only statistics are.
    pub engine: EngineMode,
    /// Routing sampler used by the population engine (ignored by the
    /// per-server engine): the alias-table fast path or the linear-scan
    /// reference it is differentially tested against.
    pub population_sampler: PopulationSampler,
    /// Master seed; trials derive their own seeds from it.
    pub seed: u64,
}

impl SimConfig {
    /// Starts a builder with the paper's defaults
    /// (n = 100, λ = 0.9, 500 000 arrivals, 10% warm-up, Exponential(1)
    /// service, seed 1).
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder::default()
    }

    /// Total arrival rate: `λ` times the total service capacity
    /// (`λ·n` for a homogeneous cluster).
    pub fn total_rate(&self) -> f64 {
        self.lambda * self.total_capacity()
    }

    /// Total service capacity (`n` for a homogeneous cluster).
    pub fn total_capacity(&self) -> f64 {
        match &self.capacities {
            Some(caps) => caps.iter().sum(),
            None => self.servers as f64,
        }
    }

    /// Number of leading jobs excluded from measurement.
    pub fn warmup_jobs(&self) -> u64 {
        (self.arrivals as f64 * self.warmup_fraction) as u64
    }
}

/// Builder for [`SimConfig`].
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    servers: usize,
    lambda: f64,
    arrivals: u64,
    warmup_fraction: f64,
    service: Dist,
    capacities: Option<Vec<f64>>,
    work_stealing: Option<u32>,
    faults: FaultSpec,
    queue_cap: Option<u32>,
    deadline: Option<f64>,
    retry: Option<RetrySpec>,
    scheduler: SchedulerKind,
    sketch_cap: usize,
    engine: EngineMode,
    population_sampler: PopulationSampler,
    seed: u64,
}

impl Default for SimConfigBuilder {
    fn default() -> Self {
        Self {
            servers: 100,
            lambda: 0.9,
            arrivals: 500_000,
            warmup_fraction: 0.1,
            service: Dist::exponential(1.0),
            capacities: None,
            work_stealing: None,
            faults: FaultSpec::none(),
            queue_cap: None,
            deadline: None,
            retry: None,
            scheduler: SchedulerKind::Heap,
            sketch_cap: staleload_stats::TailSketch::DEFAULT_CAP,
            engine: EngineMode::PerServer,
            population_sampler: PopulationSampler::Alias,
            seed: 1,
        }
    }
}

impl SimConfigBuilder {
    /// Sets the number of servers `n`.
    pub fn servers(&mut self, n: usize) -> &mut Self {
        self.servers = n;
        self
    }

    /// Sets the true per-server load λ.
    pub fn lambda(&mut self, lambda: f64) -> &mut Self {
        self.lambda = lambda;
        self
    }

    /// Sets the total number of generated jobs.
    pub fn arrivals(&mut self, arrivals: u64) -> &mut Self {
        self.arrivals = arrivals;
        self
    }

    /// Sets the warm-up fraction (default 0.1).
    pub fn warmup_fraction(&mut self, f: f64) -> &mut Self {
        self.warmup_fraction = f;
        self
    }

    /// Sets the job-size distribution.
    pub fn service(&mut self, service: Dist) -> &mut Self {
        self.service = service;
        self
    }

    /// Makes the cluster heterogeneous: server `i` runs at rate
    /// `capacities[i]` (also sets `servers` to the vector's length).
    pub fn capacities(&mut self, capacities: Vec<f64>) -> &mut Self {
        self.servers = capacities.len();
        self.capacities = Some(capacities);
        self
    }

    /// Enables receiver-driven work stealing: an idle server pulls a
    /// waiting job from the longest queue when it holds at least
    /// `min_victim_load` jobs (≥ 2).
    pub fn work_stealing(&mut self, min_victim_load: u32) -> &mut Self {
        self.work_stealing = Some(min_victim_load);
        self
    }

    /// Enables fault injection (server crashes and/or a lossy update
    /// channel); see [`FaultSpec`].
    pub fn faults(&mut self, faults: FaultSpec) -> &mut Self {
        self.faults = faults;
        self
    }

    /// Bounds every server's queue at `cap` jobs (including the one in
    /// service); arrivals beyond the cap are rejected.
    pub fn queue_cap(&mut self, cap: u32) -> &mut Self {
        self.queue_cap = Some(cap);
        self
    }

    /// Sets the per-job waiting deadline: jobs still waiting this long
    /// after admission renege.
    pub fn deadline(&mut self, deadline: f64) -> &mut Self {
        self.deadline = Some(deadline);
        self
    }

    /// Enables the retry orbit for rejected/reneged jobs.
    pub fn retry(&mut self, retry: RetrySpec) -> &mut Self {
        self.retry = Some(retry);
        self
    }

    /// Selects the pending-event-set backend (default: the binary heap).
    pub fn scheduler(&mut self, scheduler: SchedulerKind) -> &mut Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the exact-mode capacity of the response-time quantile
    /// sketch (must be ≥ 1; the default keeps runs of up to
    /// [`staleload_stats::TailSketch::DEFAULT_CAP`] measured jobs exact).
    pub fn sketch_cap(&mut self, cap: usize) -> &mut Self {
        self.sketch_cap = cap;
        self
    }

    /// Selects the engine's state representation (default: per-server).
    pub fn engine(&mut self, engine: EngineMode) -> &mut Self {
        self.engine = engine;
        self
    }

    /// Selects the population engine's routing sampler (default: the
    /// alias table).
    pub fn population_sampler(&mut self, sampler: PopulationSampler) -> &mut Self {
        self.population_sampler = sampler;
        self
    }

    /// Sets the master seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any parameter is out of range
    /// (`servers == 0`, `λ ∉ (0, 2]`, `arrivals == 0`,
    /// `warmup_fraction ∉ [0, 1)`).
    pub fn try_build(&self) -> Result<SimConfig, ConfigError> {
        if self.servers == 0 {
            return Err(ConfigError::new("need at least one server"));
        }
        if !(self.lambda > 0.0 && self.lambda <= 2.0) {
            return Err(ConfigError::new(format!(
                "lambda must be in (0, 2], got {} (λ ≥ 1 is unstable but allowed for experiments)",
                self.lambda
            )));
        }
        if self.arrivals == 0 {
            return Err(ConfigError::new("need at least one arrival"));
        }
        if !(0.0..1.0).contains(&self.warmup_fraction) {
            return Err(ConfigError::new(format!(
                "warmup fraction must be in [0, 1), got {}",
                self.warmup_fraction
            )));
        }
        if let Some(caps) = &self.capacities {
            if caps.len() != self.servers {
                return Err(ConfigError::new(format!(
                    "capacities length {} must match servers {}",
                    caps.len(),
                    self.servers
                )));
            }
            if !caps.iter().all(|&c| c.is_finite() && c > 0.0) {
                return Err(ConfigError::new("capacities must be positive and finite"));
            }
        }
        if let Some(min) = self.work_stealing {
            if min < 2 {
                return Err(ConfigError::new(
                    "work stealing threshold must be at least 2 (one job must be waiting)",
                ));
            }
        }
        self.faults.validate()?;
        if self.queue_cap == Some(0) {
            return Err(ConfigError::new(
                "queue cap must be at least 1 (a zero cap rejects every job)",
            ));
        }
        if let Some(d) = self.deadline {
            if !(d.is_finite() && d > 0.0) {
                return Err(ConfigError::new(format!(
                    "deadline must be finite and positive, got {d}"
                )));
            }
        }
        if let Some(retry) = &self.retry {
            retry
                .validate()
                .map_err(|e| ConfigError::new(e.to_string()))?;
            if self.queue_cap.is_none() && self.deadline.is_none() {
                return Err(ConfigError::new(
                    "retry orbit needs a queue cap or a deadline (nothing can bounce a job \
                     otherwise)",
                ));
            }
        }
        if self.sketch_cap == 0 {
            return Err(ConfigError::new(
                "sketch capacity must be at least 1 (a zero-capacity sketch cannot hold the \
                 exact multiset it starts from)",
            ));
        }
        if self.engine == EngineMode::Population {
            // The count-matrix representation is exact only when servers
            // are exchangeable and all clocks are memoryless; every knob
            // that breaks that symmetry is a config error, not a silent
            // approximation.
            if self.capacities.is_some() {
                return Err(ConfigError::new(
                    "population engine needs a homogeneous cluster (capacities break the \
                     server exchangeability the count representation relies on)",
                ));
            }
            if self.work_stealing.is_some() {
                return Err(ConfigError::new(
                    "population engine does not model work stealing; use the per-server engine",
                ));
            }
            if !self.faults.is_none() {
                return Err(ConfigError::new(
                    "population engine does not model fault injection; use the per-server engine",
                ));
            }
            if self.queue_cap.is_some() || self.deadline.is_some() || self.retry.is_some() {
                return Err(ConfigError::new(
                    "population engine does not model overload controls (queue caps, \
                     deadlines, retries); use the per-server engine",
                ));
            }
            if !matches!(self.service, Dist::Exponential { .. }) {
                return Err(ConfigError::new(format!(
                    "population engine is exact only for memoryless (exponential) service, \
                     got {}; use the per-server engine",
                    self.service
                )));
            }
        }
        Ok(SimConfig {
            servers: self.servers,
            lambda: self.lambda,
            arrivals: self.arrivals,
            warmup_fraction: self.warmup_fraction,
            service: self.service,
            capacities: self.capacities.clone(),
            work_stealing: self.work_stealing,
            faults: self.faults,
            queue_cap: self.queue_cap,
            deadline: self.deadline,
            retry: self.retry,
            scheduler: self.scheduler,
            sketch_cap: self.sketch_cap,
            engine: self.engine,
            population_sampler: self.population_sampler,
            seed: self.seed,
        })
    }

    /// Validates and builds the configuration.
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters; see [`SimConfigBuilder::try_build`] for
    /// the fallible form.
    pub fn build(&self) -> SimConfig {
        // lint: allow(panic-hygiene) — documented panicking convenience; try_build is the fallible form
        self.try_build().expect("invalid simulation configuration")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = SimConfig::builder().build();
        assert_eq!(cfg.servers, 100);
        assert_eq!(cfg.lambda, 0.9);
        assert!((cfg.total_rate() - 90.0).abs() < 1e-12);
        assert_eq!(cfg.warmup_jobs(), 50_000);
    }

    #[test]
    fn builder_sets_fields() {
        let cfg = SimConfig::builder()
            .servers(8)
            .lambda(0.5)
            .arrivals(1000)
            .warmup_fraction(0.2)
            .seed(9)
            .build();
        assert_eq!(cfg.servers, 8);
        assert_eq!(cfg.lambda, 0.5);
        assert_eq!(cfg.warmup_jobs(), 200);
        assert_eq!(cfg.seed, 9);
    }

    #[test]
    fn engine_enum_display_round_trips_from_str() {
        for mode in [EngineMode::PerServer, EngineMode::Population] {
            assert_eq!(mode.to_string().parse::<EngineMode>(), Ok(mode));
        }
        for sampler in [PopulationSampler::Alias, PopulationSampler::Scan] {
            assert_eq!(
                sampler.to_string().parse::<PopulationSampler>(),
                Ok(sampler)
            );
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(SimConfig::builder().servers(0).try_build().is_err());
        assert!(SimConfig::builder().lambda(0.0).try_build().is_err());
        assert!(SimConfig::builder().lambda(5.0).try_build().is_err());
        assert!(SimConfig::builder().arrivals(0).try_build().is_err());
        assert!(SimConfig::builder()
            .warmup_fraction(1.0)
            .try_build()
            .is_err());
    }

    #[test]
    fn overload_controls_default_off() {
        let cfg = SimConfig::builder().build();
        assert_eq!(cfg.queue_cap, None);
        assert_eq!(cfg.deadline, None);
        assert_eq!(cfg.retry, None);
    }

    #[test]
    fn sketch_cap_defaults_and_validates() {
        let cfg = SimConfig::builder().build();
        assert_eq!(cfg.sketch_cap, staleload_stats::TailSketch::DEFAULT_CAP);
        let cfg = SimConfig::builder().sketch_cap(16).build();
        assert_eq!(cfg.sketch_cap, 16);
        assert!(SimConfig::builder().sketch_cap(0).try_build().is_err());
    }

    #[test]
    fn overload_controls_are_validated() {
        let retry = RetrySpec {
            max_attempts: 4,
            base: 0.5,
            cap: 10.0,
        };
        assert!(SimConfig::builder()
            .queue_cap(8)
            .deadline(5.0)
            .retry(retry)
            .try_build()
            .is_ok());
        assert!(SimConfig::builder().queue_cap(0).try_build().is_err());
        assert!(SimConfig::builder().deadline(0.0).try_build().is_err());
        assert!(SimConfig::builder()
            .deadline(f64::INFINITY)
            .try_build()
            .is_err());
        // A retry orbit with nothing to bounce jobs is a config error.
        assert!(SimConfig::builder().retry(retry).try_build().is_err());
        // Bad retry parameters surface as ConfigError.
        assert!(SimConfig::builder()
            .queue_cap(8)
            .retry(RetrySpec {
                max_attempts: 1,
                base: 0.5,
                cap: 10.0
            })
            .try_build()
            .is_err());
    }

    #[test]
    fn arrival_spec_client_counts() {
        assert_eq!(ArrivalSpec::Poisson.clients(), 1);
        assert_eq!(ArrivalSpec::PoissonClients { clients: 7 }.clients(), 7);
        let burst = BurstConfig {
            burst_len: 5,
            intra_gap_mean: 1.0,
        };
        assert_eq!(
            ArrivalSpec::BurstyClients { clients: 3, burst }.clients(),
            3
        );
    }
}
