//! Detailed per-run metrics beyond the paper's mean response time.
//!
//! The paper reports mean response times; a production load-balancing
//! study also wants tails, fairness, and occupancy. [`RunDetail`] collects
//! those with O(1) work per event, and doubles as a validation surface
//! (Little's law, utilization ≈ λ).

use staleload_sim::{Histogram, TimeWeighted};

/// Detailed metrics of one simulation run.
#[derive(Debug, Clone)]
pub struct RunDetail {
    /// Log-bucketed histogram of measured response times (~12% resolution).
    pub response_histogram: Histogram,
    /// Jobs in the whole system, time-averaged over the run.
    pub jobs_in_system: TimeWeighted,
    /// Jobs completed per server.
    pub per_server_completed: Vec<u64>,
    /// Busy time per server over completed busy periods.
    pub per_server_busy: Vec<f64>,
}

impl RunDetail {
    pub(crate) fn new(servers: usize) -> Self {
        Self {
            response_histogram: Histogram::for_response_times(),
            jobs_in_system: TimeWeighted::new(0.0, 0.0),
            per_server_completed: vec![0; servers],
            per_server_busy: vec![0.0; servers],
        }
    }

    /// Approximate response-time quantile over measured jobs.
    ///
    /// # Panics
    ///
    /// Panics if no job was measured or `q ∉ [0, 1]`.
    pub fn response_quantile(&self, q: f64) -> f64 {
        self.response_histogram.quantile(q)
    }

    /// Time-averaged number of jobs in the system over `[0, end_time]`.
    pub fn mean_jobs_in_system(&self, end_time: f64) -> f64 {
        self.jobs_in_system.average(end_time)
    }

    /// Largest instantaneous number of jobs in the system — spikes here are
    /// the herd effect made visible.
    pub fn peak_jobs_in_system(&self) -> f64 {
        self.jobs_in_system.peak()
    }

    /// Per-server utilization (busy time / horizon).
    pub fn utilizations(&self, end_time: f64) -> Vec<f64> {
        if end_time <= 0.0 {
            return vec![0.0; self.per_server_busy.len()];
        }
        self.per_server_busy.iter().map(|&b| b / end_time).collect()
    }

    /// Jain's fairness index of per-server completed-job counts:
    /// `(Σx)² / (n·Σx²)`; 1.0 = perfectly even, `1/n` = all work on one
    /// server.
    pub fn throughput_fairness(&self) -> f64 {
        jain_fairness(&self.per_server_completed)
    }
}

/// Jain's fairness index over non-negative counts.
///
/// Returns 1.0 for an empty or all-zero input (nothing to be unfair
/// about).
///
/// # Example
///
/// ```
/// use staleload_core::jain_fairness;
///
/// assert!((jain_fairness(&[10, 10, 10, 10]) - 1.0).abs() < 1e-12);
/// assert!((jain_fairness(&[40, 0, 0, 0]) - 0.25).abs() < 1e-12);
/// ```
pub fn jain_fairness(counts: &[u64]) -> f64 {
    let n = counts.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = counts.iter().map(|&c| c as f64).sum();
    let sumsq: f64 = counts.iter().map(|&c| (c as f64) * (c as f64)).sum();
    if sumsq == 0.0 {
        return 1.0;
    }
    sum * sum / (n as f64 * sumsq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fairness_bounds() {
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0, 0]), 1.0);
        assert!((jain_fairness(&[5, 5, 5]) - 1.0).abs() < 1e-12);
        assert!((jain_fairness(&[9, 0, 0]) - 1.0 / 3.0).abs() < 1e-12);
        let mid = jain_fairness(&[8, 4, 0]);
        assert!(mid > 1.0 / 3.0 && mid < 1.0, "{mid}");
    }

    #[test]
    fn detail_accumulates() {
        let mut d = RunDetail::new(2);
        d.jobs_in_system.update(1.0, 3.0);
        d.response_histogram.record(2.0);
        d.per_server_completed[0] = 1;
        d.per_server_busy[0] = 2.0;
        assert_eq!(d.peak_jobs_in_system(), 3.0);
        assert_eq!(d.response_quantile(1.0), 2.0);
        assert!((d.utilizations(4.0)[0] - 0.5).abs() < 1e-12);
        assert!(d.throughput_fairness() < 1.0);
    }
}
