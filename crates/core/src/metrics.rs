//! Detailed per-run metrics beyond the paper's mean response time.
//!
//! The paper reports mean response times; a production load-balancing
//! study also wants tails, fairness, and occupancy. [`RunDetail`] collects
//! those with O(1) work per event, and doubles as a validation surface
//! (Little's law, utilization ≈ λ).

use staleload_sim::{Histogram, TimeWeighted};
use staleload_stats::TailSketch;

/// Detailed metrics of one simulation run.
#[derive(Debug, Clone)]
pub struct RunDetail {
    /// Log-bucketed histogram of measured response times (~12% resolution).
    pub response_histogram: Histogram,
    /// Mergeable quantile sketch of measured response times (ISSUE 8):
    /// exact below the configured capacity, ~0.5% relative error above
    /// it, and bit-identical under any merge order across trials.
    pub response_sketch: TailSketch,
    /// Jobs in the whole system, time-averaged over the run.
    pub jobs_in_system: TimeWeighted,
    /// Jobs completed per server.
    pub per_server_completed: Vec<u64>,
    /// Busy time per server over completed busy periods.
    pub per_server_busy: Vec<f64>,
}

impl RunDetail {
    pub(crate) fn new(servers: usize, sketch_cap: usize) -> Self {
        Self {
            response_histogram: Histogram::for_response_times(),
            response_sketch: TailSketch::new(sketch_cap),
            jobs_in_system: TimeWeighted::new(0.0, 0.0),
            per_server_completed: vec![0; servers],
            per_server_busy: vec![0.0; servers],
        }
    }

    /// Response-time quantile over measured jobs, from the sketch:
    /// bit-exact below the sketch capacity, ~0.5% relative error above.
    ///
    /// # Panics
    ///
    /// Panics if no job was measured or `q ∉ [0, 1]`.
    pub fn response_quantile(&self, q: f64) -> f64 {
        self.response_sketch.quantile(q)
    }

    /// Time-averaged number of jobs in the system over `[0, end_time]`.
    pub fn mean_jobs_in_system(&self, end_time: f64) -> f64 {
        self.jobs_in_system.average(end_time)
    }

    /// Largest instantaneous number of jobs in the system — spikes here are
    /// the herd effect made visible.
    pub fn peak_jobs_in_system(&self) -> f64 {
        self.jobs_in_system.peak()
    }

    /// Time-to-recovery proxy after a transient: how long the jobs-in-system
    /// signal stayed at or above half its peak after peaking (see
    /// [`TimeWeighted::relaxation_time`]). Near zero for a run that never
    /// built up a sustained backlog.
    pub fn time_to_recovery(&self) -> f64 {
        self.jobs_in_system.relaxation_time()
    }

    /// Per-server utilization (busy time / horizon).
    pub fn utilizations(&self, end_time: f64) -> Vec<f64> {
        if end_time <= 0.0 {
            return vec![0.0; self.per_server_busy.len()];
        }
        self.per_server_busy.iter().map(|&b| b / end_time).collect()
    }

    /// Jain's fairness index of per-server completed-job counts:
    /// `(Σx)² / (n·Σx²)`; 1.0 = perfectly even, `1/n` = all work on one
    /// server.
    pub fn throughput_fairness(&self) -> f64 {
        jain_fairness(&self.per_server_completed)
    }
}

/// First-class tail latencies of one experiment point, computed from the
/// per-trial quantile sketches merged in trial order (ISSUE 8). Because
/// the sketch's merge is bit-exact under any association, these numbers
/// are identical whether the trials ran sequentially, on 2 workers, on 8,
/// or were replayed from the result cache.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct TailSummary {
    /// Median response time across every measured job of every trial.
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
    /// Exact largest measured response time.
    pub max: f64,
    /// Measured jobs covered (0 when nothing was measured; the
    /// percentiles are then NaN).
    pub count: u64,
}

/// Bit-level equality, so two empty (all-NaN) summaries compare equal
/// and golden tests can assert exact reproduction.
impl PartialEq for TailSummary {
    fn eq(&self, other: &Self) -> bool {
        self.p50.to_bits() == other.p50.to_bits()
            && self.p99.to_bits() == other.p99.to_bits()
            && self.p999.to_bits() == other.p999.to_bits()
            && self.max.to_bits() == other.max.to_bits()
            && self.count == other.count
    }
}

impl TailSummary {
    /// Summarizes a merged sketch; all-NaN percentiles when it is empty.
    pub fn from_sketch(sketch: &TailSketch) -> Self {
        if sketch.count() == 0 {
            return Self::empty();
        }
        Self {
            p50: sketch.quantile(0.5),
            p99: sketch.quantile(0.99),
            p999: sketch.quantile(0.999),
            max: sketch.max(),
            count: sketch.count(),
        }
    }

    /// The no-data summary (NaN percentiles, zero count).
    pub fn empty() -> Self {
        Self {
            p50: f64::NAN,
            p99: f64::NAN,
            p999: f64::NAN,
            max: f64::NAN,
            count: 0,
        }
    }
}

/// Counters from the overload control plane (bounded queues, deadlines,
/// retry orbit). All zero when the controls are off.
///
/// The counters satisfy two conservation laws the engine's proptests pin
/// down: every generated job either completes or is abandoned
/// (`generated == completed + abandoned`), and every bounce either
/// re-enters the orbit or is terminal
/// (`rejected + reneged == retries + abandoned`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverloadStats {
    /// Admission attempts bounced off a full queue (retries re-rejected
    /// count again).
    pub rejected: u64,
    /// Jobs that abandoned a queue after waiting past their deadline
    /// (again counting repeats).
    pub reneged: u64,
    /// Bounced jobs that re-entered the arrival stream via the retry
    /// orbit.
    pub retries: u64,
    /// Jobs terminally lost: bounced with no retry configured or with
    /// their attempt budget exhausted.
    pub abandoned: u64,
}

impl OverloadStats {
    /// Whether every counter is zero (controls off or never triggered).
    pub fn is_zero(&self) -> bool {
        *self == Self::default()
    }

    /// Admission attempts per generated job: 1.0 with no retries, growing
    /// as the orbit re-offers bounced jobs (the retry storm made
    /// measurable).
    pub fn retry_amplification(&self, generated: u64) -> f64 {
        if generated == 0 {
            return 1.0;
        }
        1.0 + self.retries as f64 / generated as f64
    }

    /// Fraction of admission attempts bounced at the queue cap.
    pub fn rejection_rate(&self, generated: u64) -> f64 {
        let attempts = generated + self.retries;
        if attempts == 0 {
            return 0.0;
        }
        self.rejected as f64 / attempts as f64
    }

    /// Reneges per admitted job (admissions = attempts − rejections).
    pub fn renege_rate(&self, generated: u64) -> f64 {
        let admitted = generated + self.retries - self.rejected;
        if admitted == 0 {
            return 0.0;
        }
        self.reneged as f64 / admitted as f64
    }
}

/// Counters from the degraded-information control plane (hedged dispatch,
/// server quarantine, partition/corruption fault injection). All zero when
/// none of those knobs is turned.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ResilienceStats {
    /// Extra hedge replicas placed (a job hedged to `h` servers counts
    /// `h − 1` here).
    pub hedges_issued: u64,
    /// Hedged jobs won by a replica other than the primary pick.
    pub hedges_won: u64,
    /// Losing replicas cancelled when a sibling completed first.
    pub hedges_cancelled: u64,
    /// Servers ejected from the candidate set by a quarantine wrapper.
    pub quarantine_ejections: u64,
    /// Quarantined servers readmitted after a successful probe.
    pub quarantine_readmissions: u64,
    /// Load reports garbled in flight by corruption injection.
    pub corrupted_reports: u64,
    /// Summed server-seconds of board invisibility (a partition hiding 3
    /// servers for 2 time units counts 6).
    pub partition_seconds: f64,
}

impl ResilienceStats {
    /// Whether every counter is zero (no resilience knob turned, or none
    /// ever triggered).
    pub fn is_zero(&self) -> bool {
        *self == Self::default()
    }

    /// Fraction of hedged placements the primary pick lost — how often the
    /// hedge actually paid for itself.
    pub fn hedge_win_rate(&self) -> f64 {
        if self.hedges_issued == 0 {
            return 0.0;
        }
        self.hedges_won as f64 / self.hedges_issued as f64
    }
}

/// Jain's fairness index over non-negative counts.
///
/// Returns 1.0 for an empty or all-zero input (nothing to be unfair
/// about).
///
/// # Example
///
/// ```
/// use staleload_core::jain_fairness;
///
/// assert!((jain_fairness(&[10, 10, 10, 10]) - 1.0).abs() < 1e-12);
/// assert!((jain_fairness(&[40, 0, 0, 0]) - 0.25).abs() < 1e-12);
/// ```
pub fn jain_fairness(counts: &[u64]) -> f64 {
    let n = counts.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = counts.iter().map(|&c| c as f64).sum();
    let sumsq: f64 = counts.iter().map(|&c| (c as f64) * (c as f64)).sum();
    if sumsq == 0.0 {
        return 1.0;
    }
    sum * sum / (n as f64 * sumsq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fairness_bounds() {
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0, 0]), 1.0);
        assert!((jain_fairness(&[5, 5, 5]) - 1.0).abs() < 1e-12);
        assert!((jain_fairness(&[9, 0, 0]) - 1.0 / 3.0).abs() < 1e-12);
        let mid = jain_fairness(&[8, 4, 0]);
        assert!(mid > 1.0 / 3.0 && mid < 1.0, "{mid}");
    }

    #[test]
    fn overload_stats_rates() {
        let stats = OverloadStats {
            rejected: 20,
            reneged: 10,
            retries: 24,
            abandoned: 6,
        };
        assert!(!stats.is_zero());
        // 100 generated + 24 retries = 124 attempts.
        assert!((stats.retry_amplification(100) - 1.24).abs() < 1e-12);
        assert!((stats.rejection_rate(100) - 20.0 / 124.0).abs() < 1e-12);
        assert!((stats.renege_rate(100) - 10.0 / 104.0).abs() < 1e-12);
        assert!(OverloadStats::default().is_zero());
        assert_eq!(OverloadStats::default().retry_amplification(0), 1.0);
        assert_eq!(OverloadStats::default().rejection_rate(0), 0.0);
    }

    #[test]
    fn resilience_stats_rates() {
        assert!(ResilienceStats::default().is_zero());
        assert_eq!(ResilienceStats::default().hedge_win_rate(), 0.0);
        let stats = ResilienceStats {
            hedges_issued: 40,
            hedges_won: 10,
            hedges_cancelled: 40,
            quarantine_ejections: 3,
            quarantine_readmissions: 2,
            corrupted_reports: 7,
            partition_seconds: 12.5,
        };
        assert!(!stats.is_zero());
        assert!((stats.hedge_win_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn detail_accumulates() {
        let mut d = RunDetail::new(2, 64);
        d.jobs_in_system.update(1.0, 3.0);
        d.response_histogram.record(2.0);
        d.response_sketch.record(2.0);
        d.per_server_completed[0] = 1;
        d.per_server_busy[0] = 2.0;
        assert_eq!(d.peak_jobs_in_system(), 3.0);
        assert_eq!(d.response_quantile(1.0), 2.0);
        assert!((d.utilizations(4.0)[0] - 0.5).abs() < 1e-12);
        assert!(d.throughput_fairness() < 1.0);
    }

    #[test]
    fn tail_summary_from_sketch() {
        let mut s = TailSketch::new(64);
        for i in 1..=10 {
            s.record(i as f64);
        }
        let t = TailSummary::from_sketch(&s);
        assert_eq!(t.count, 10);
        assert_eq!(t.p50, 5.5);
        assert_eq!(t.max, 10.0);
        assert!(t.p99 <= t.p999 && t.p999 <= t.max);

        let empty = TailSummary::from_sketch(&TailSketch::new(64));
        assert_eq!(empty.count, 0);
        assert!(empty.p50.is_nan() && empty.p99.is_nan());
        assert_eq!(empty, TailSummary::empty());
    }
}
