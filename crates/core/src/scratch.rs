//! Thread-local recycling of per-run engine buffers.
//!
//! The sweep runner executes many trials back-to-back on each worker
//! thread; recycling the engine's per-server bookkeeping vectors (and,
//! via `DispatchPolicy::from_spec_reusing`, the policies' probability /
//! CDF / sort scratch) moves those allocations from per-trial to
//! per-point. Only *capacity* is ever reused — every buffer is cleared
//! and re-initialized on acquisition, so a recycled run is
//! indistinguishable from a fresh one (the golden-trajectory tests pin
//! this bit-for-bit).

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};

thread_local! {
    static OPT_F64_POOL: RefCell<Vec<Vec<Option<f64>>>> = const { RefCell::new(Vec::new()) };
}

/// Two live buffers per run (`scheduled`, `frozen`) plus slack.
const OPT_F64_POOL_DEPTH: usize = 8;

/// A `Vec<Option<f64>>` drawn from a thread-local pool; its allocation
/// returns to the pool on drop (including drops during unwinding).
pub(crate) struct PooledOptVec(Vec<Option<f64>>);

impl PooledOptVec {
    /// An all-`None` buffer of length `n`, reusing pooled capacity.
    pub(crate) fn none(n: usize) -> Self {
        let mut v = OPT_F64_POOL
            .with(|pool| pool.borrow_mut().pop())
            .unwrap_or_default();
        v.clear();
        v.resize(n, None);
        Self(v)
    }
}

impl Deref for PooledOptVec {
    type Target = Vec<Option<f64>>;

    fn deref(&self) -> &Self::Target {
        &self.0
    }
}

impl DerefMut for PooledOptVec {
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut self.0
    }
}

impl Drop for PooledOptVec {
    fn drop(&mut self) {
        let v = std::mem::take(&mut self.0);
        if v.capacity() == 0 {
            return;
        }
        let _ = OPT_F64_POOL.try_with(|pool| {
            let mut pool = pool.borrow_mut();
            if pool.len() < OPT_F64_POOL_DEPTH {
                pool.push(v);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycled_buffer_is_reinitialized() {
        let capacity_after_use;
        {
            let mut v = PooledOptVec::none(4);
            v[2] = Some(1.5);
            v.push(Some(9.0));
            capacity_after_use = v.capacity();
        }
        let v = PooledOptVec::none(3);
        assert_eq!(&**v, &[None, None, None]);
        assert!(v.capacity() >= capacity_after_use.min(3));
    }
}
