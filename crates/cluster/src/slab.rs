//! Intrusive job slab: one shared arena of job slots plus per-server
//! doubly-linked FIFO lists threaded through it.
//!
//! Every queued job in a [`crate::Cluster`] lives in one slot of a single
//! `Vec`. Freed slots go on a free list and are reused, so once the
//! simulation reaches its steady-state population, admitting and
//! completing jobs performs **zero heap allocations** — unlike one
//! `VecDeque` per server, each of which grows (and re-grows after
//! `drain`) on its own schedule. Links are `u32` indices (`NIL` =
//! `u32::MAX`), keeping a slot at 40 bytes and the whole pending-job set
//! in one contiguous, cache-friendly block.

use crate::Job;

/// Sentinel index: "no slot".
const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Slot {
    job: Job,
    /// Towards the tail (younger jobs); on the free list, the next free slot.
    next: u32,
    /// Towards the head (older jobs).
    prev: u32,
}

/// Arena of job slots shared by every server's queue in one cluster.
#[derive(Debug, Clone, Default)]
pub(crate) struct JobSlab {
    slots: Vec<Slot>,
    free_head: u32,
}

impl JobSlab {
    pub(crate) fn new() -> Self {
        Self {
            slots: Vec::new(),
            free_head: NIL,
        }
    }

    /// Forgets every slot (keeping the arena's capacity) and empties the
    /// free list — used when a recycled slab is handed to a new cluster.
    pub(crate) fn reset(&mut self) {
        self.slots.clear();
        self.free_head = NIL;
    }

    /// Live slots (allocated and not yet freed) — for tests/debugging.
    #[cfg(test)]
    fn live(&self) -> usize {
        let mut free = 0;
        let mut idx = self.free_head;
        while idx != NIL {
            free += 1;
            idx = self.slots[idx as usize].next;
        }
        self.slots.len() - free
    }

    /// Stores `job`, reusing a freed slot when one exists.
    fn alloc(&mut self, job: Job) -> u32 {
        if self.free_head != NIL {
            let idx = self.free_head;
            let slot = &mut self.slots[idx as usize];
            self.free_head = slot.next;
            slot.job = job;
            slot.next = NIL;
            slot.prev = NIL;
            idx
        } else {
            assert!(
                self.slots.len() < NIL as usize,
                "job slab exhausted (u32 index space)"
            );
            self.slots.push(Slot {
                job,
                next: NIL,
                prev: NIL,
            });
            (self.slots.len() - 1) as u32
        }
    }

    /// Returns `idx`'s job and puts the slot on the free list.
    fn dealloc(&mut self, idx: u32) -> Job {
        let slot = &mut self.slots[idx as usize];
        let job = slot.job;
        slot.next = self.free_head;
        slot.prev = NIL;
        self.free_head = idx;
        job
    }

    #[inline]
    fn job(&self, idx: u32) -> &Job {
        &self.slots[idx as usize].job
    }
}

/// One server's FIFO queue: head = oldest (the job in service), tail =
/// youngest. Purely an index pair — the jobs live in the [`JobSlab`].
#[derive(Debug, Clone)]
pub(crate) struct JobList {
    head: u32,
    tail: u32,
    len: u32,
}

impl Default for JobList {
    fn default() -> Self {
        Self {
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }
}

impl JobList {
    pub(crate) fn len(&self) -> usize {
        self.len as usize
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The oldest job (queue head / in service), if any.
    pub(crate) fn front<'s>(&self, slab: &'s JobSlab) -> Option<&'s Job> {
        (self.head != NIL).then(|| slab.job(self.head))
    }

    /// Appends `job` at the tail.
    pub(crate) fn push_back(&mut self, slab: &mut JobSlab, job: Job) {
        let idx = slab.alloc(job);
        slab.slots[idx as usize].prev = self.tail;
        if self.tail != NIL {
            slab.slots[self.tail as usize].next = idx;
        } else {
            self.head = idx;
        }
        self.tail = idx;
        self.len += 1;
    }

    fn unlink(&mut self, slab: &mut JobSlab, idx: u32) -> Job {
        let (prev, next) = {
            let s = &slab.slots[idx as usize];
            (s.prev, s.next)
        };
        if prev != NIL {
            slab.slots[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            slab.slots[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
        self.len -= 1;
        slab.dealloc(idx)
    }

    /// Removes and returns the oldest job.
    pub(crate) fn pop_front(&mut self, slab: &mut JobSlab) -> Option<Job> {
        (self.head != NIL).then(|| self.unlink(slab, self.head))
    }

    /// Removes and returns the youngest job.
    pub(crate) fn pop_back(&mut self, slab: &mut JobSlab) -> Option<Job> {
        (self.tail != NIL).then(|| self.unlink(slab, self.tail))
    }

    /// Removes the job with id `job_id`, skipping the first `skip` queue
    /// positions (e.g. the in-service head, which must not renege).
    pub(crate) fn remove_by_id(
        &mut self,
        slab: &mut JobSlab,
        job_id: u64,
        skip: usize,
    ) -> Option<Job> {
        let mut idx = self.head;
        for _ in 0..skip {
            if idx == NIL {
                return None;
            }
            idx = slab.slots[idx as usize].next;
        }
        while idx != NIL {
            if slab.job(idx).id == job_id {
                return Some(self.unlink(slab, idx));
            }
            idx = slab.slots[idx as usize].next;
        }
        None
    }

    /// Empties the list head-first into `out` (FIFO order preserved).
    pub(crate) fn drain_into(&mut self, slab: &mut JobSlab, out: &mut Vec<Job>) {
        while let Some(job) = self.pop_front(slab) {
            out.push(job);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64) -> Job {
        Job::new(id, id as f64, 1.0)
    }

    #[test]
    fn fifo_order() {
        let mut slab = JobSlab::new();
        let mut q = JobList::default();
        for i in 0..5 {
            q.push_back(&mut slab, job(i));
        }
        assert_eq!(q.len(), 5);
        assert_eq!(q.front(&slab).unwrap().id, 0);
        for i in 0..5 {
            assert_eq!(q.pop_front(&mut slab).unwrap().id, i);
        }
        assert!(q.is_empty());
        assert_eq!(q.pop_front(&mut slab), None);
    }

    #[test]
    fn pop_back_takes_youngest() {
        let mut slab = JobSlab::new();
        let mut q = JobList::default();
        for i in 0..3 {
            q.push_back(&mut slab, job(i));
        }
        assert_eq!(q.pop_back(&mut slab).unwrap().id, 2);
        assert_eq!(q.pop_front(&mut slab).unwrap().id, 0);
        assert_eq!(q.pop_back(&mut slab).unwrap().id, 1);
        assert!(q.is_empty());
    }

    #[test]
    fn remove_by_id_respects_skip() {
        let mut slab = JobSlab::new();
        let mut q = JobList::default();
        for i in 0..4 {
            q.push_back(&mut slab, job(i));
        }
        // Head is "in service": cannot be removed with skip=1.
        assert_eq!(q.remove_by_id(&mut slab, 0, 1), None);
        assert_eq!(q.remove_by_id(&mut slab, 2, 1).unwrap().id, 2);
        assert_eq!(q.len(), 3);
        // Remaining FIFO order intact: 0, 1, 3.
        assert_eq!(q.pop_front(&mut slab).unwrap().id, 0);
        assert_eq!(q.pop_front(&mut slab).unwrap().id, 1);
        assert_eq!(q.pop_front(&mut slab).unwrap().id, 3);
    }

    #[test]
    fn slots_are_reused_not_grown() {
        let mut slab = JobSlab::new();
        let mut q = JobList::default();
        // Warm up to population 8.
        for i in 0..8 {
            q.push_back(&mut slab, job(i));
        }
        let warm = slab.slots.len();
        // Steady-state churn at population <= 8 must not grow the arena.
        for round in 0..1000u64 {
            q.pop_front(&mut slab);
            q.push_back(&mut slab, job(100 + round));
        }
        assert_eq!(slab.slots.len(), warm);
        assert_eq!(slab.live(), 8);
    }

    #[test]
    fn two_lists_share_one_slab() {
        let mut slab = JobSlab::new();
        let mut a = JobList::default();
        let mut b = JobList::default();
        a.push_back(&mut slab, job(1));
        b.push_back(&mut slab, job(2));
        a.push_back(&mut slab, job(3));
        assert_eq!(a.pop_front(&mut slab).unwrap().id, 1);
        assert_eq!(b.pop_front(&mut slab).unwrap().id, 2);
        assert_eq!(a.pop_front(&mut slab).unwrap().id, 3);
        assert_eq!(slab.live(), 0);
    }

    #[test]
    fn drain_preserves_order() {
        let mut slab = JobSlab::new();
        let mut q = JobList::default();
        for i in 0..4 {
            q.push_back(&mut slab, job(i));
        }
        let mut out = Vec::new();
        q.drain_into(&mut slab, &mut out);
        assert_eq!(
            out.iter().map(|j| j.id).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert!(q.is_empty());
        assert_eq!(slab.live(), 0);
    }
}
