//! FIFO multi-server queueing substrate.
//!
//! The paper's system model (§5) is a bank of `n` identical servers, each
//! with service rate 1 and a first-in-first-out queue. Arriving jobs are
//! routed to exactly one server by a selection policy and never migrate.
//!
//! This crate provides that substrate:
//!
//! * [`Cluster`] — the bank of servers with enqueue/complete transitions and
//!   an always-current load (queue length) vector.
//! * [`Job`] — a unit of work with its arrival time and service demand.
//! * [`LoadHistory`] — an optional per-server record of load changes, so the
//!   *continuous update* model of old information (§3.1) can answer "what did
//!   the queue lengths look like `d` time units ago?" exactly.
//!
//! The crate is deliberately policy-free: it neither samples randomness nor
//! decides placements. The driver in `staleload-core` owns the event loop.
//!
//! # Example
//!
//! ```
//! use staleload_cluster::{Cluster, Job};
//!
//! let mut cluster = Cluster::new(2);
//! // Job 0 finds server 0 idle and enters service immediately.
//! let dep = cluster.enqueue(0, Job::new(0, 0.0, 1.5), 0.0);
//! assert_eq!(dep, Some(1.5));
//! // Job 1 queues behind it; its departure is scheduled at completion time.
//! assert_eq!(cluster.enqueue(0, Job::new(1, 0.1, 1.0), 0.1), None);
//! assert_eq!(cluster.loads(), &[2, 0]);
//!
//! let (done, next) = cluster.complete(0, 1.5);
//! assert_eq!(done.id, 0);
//! assert_eq!(next, Some(2.5)); // job 1 now in service, finishes at 1.5 + 1.0
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod history;
mod slab;

pub use history::LoadHistory;

use slab::{JobList, JobSlab};

/// Identifier of a server within a [`Cluster`] (a dense index in `0..n`).
pub type ServerId = usize;

/// Allocations harvested from dropped clusters, recycled thread-locally
/// so consecutive trials on one worker allocate per *point*, not per
/// trial. Only capacity is reused: [`Cluster::new`] clears and
/// re-initializes every field, so a recycled cluster is
/// indistinguishable from a fresh one.
struct ClusterParts {
    servers: Vec<Server>,
    slab: JobSlab,
    loads: Vec<u32>,
    capacities: Vec<f64>,
    up: Vec<bool>,
    visible: Vec<bool>,
}

thread_local! {
    static CLUSTER_POOL: std::cell::RefCell<Vec<ClusterParts>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// A worker runs one simulation at a time, so a shallow pool suffices;
/// the cap bounds memory held by threads that stop simulating.
const CLUSTER_POOL_DEPTH: usize = 4;

/// Outcome of a cap-aware admission attempt (see [`Cluster::admit`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Admission {
    /// The target queue was at its cap; the job was not accepted and no
    /// arrival was counted.
    Rejected,
    /// Accepted, waiting behind other jobs (or queued on a down server).
    Queued,
    /// Accepted straight into service; departs at the given time.
    InService(f64),
}

/// A unit of work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Job {
    /// Arrival sequence number (unique per simulation).
    pub id: u64,
    /// Absolute arrival time.
    pub arrival: f64,
    /// Service demand in units of mean service time.
    pub service: f64,
}

impl Job {
    /// Creates a job.
    ///
    /// # Panics
    ///
    /// Panics if `service` is negative or not finite — a malformed workload
    /// generator should fail loudly, not corrupt the simulation.
    pub fn new(id: u64, arrival: f64, service: f64) -> Self {
        assert!(
            service.is_finite() && service >= 0.0,
            "invalid service demand {service}"
        );
        Self {
            id,
            arrival,
            service,
        }
    }
}

/// One FIFO server: the front of the queue is the job in service.
///
/// The queue is an intrusive list into the cluster's shared [`JobSlab`],
/// so steady-state admit/complete churn allocates nothing.
#[derive(Debug, Clone, Default)]
struct Server {
    queue: JobList,
    completed: u64,
    busy_since: Option<f64>,
    busy_time: f64,
}

/// A bank of FIFO servers with unit service rate.
///
/// Load is defined exactly as in the paper: the queue length including the
/// job in service. The current load vector is maintained incrementally and
/// can be read in O(1) via [`Cluster::loads`].
#[derive(Debug, Clone)]
pub struct Cluster {
    servers: Vec<Server>,
    slab: JobSlab,
    loads: Vec<u32>,
    capacities: Vec<f64>,
    up: Vec<bool>,
    /// Whether each server's load reports currently reach the bulletin
    /// board (`false` while the server is partitioned away from the
    /// information plane). Unlike [`Cluster::is_up`] this is *pure
    /// information-plane* state: an invisible server keeps serving.
    visible: Vec<bool>,
    history: Option<LoadHistory>,
    arrivals: u64,
    departures: u64,
    queue_cap: Option<u32>,
}

impl Cluster {
    /// Creates a cluster of `n` idle servers with unit service rate.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a cluster needs at least one server");
        if let Some(mut parts) = CLUSTER_POOL.with(|pool| pool.borrow_mut().pop()) {
            parts.servers.clear();
            parts.servers.resize(n, Server::default());
            parts.slab.reset();
            parts.loads.clear();
            parts.loads.resize(n, 0);
            parts.capacities.clear();
            parts.capacities.resize(n, 1.0);
            parts.up.clear();
            parts.up.resize(n, true);
            parts.visible.clear();
            parts.visible.resize(n, true);
            return Self {
                servers: parts.servers,
                slab: parts.slab,
                loads: parts.loads,
                capacities: parts.capacities,
                up: parts.up,
                visible: parts.visible,
                history: None,
                arrivals: 0,
                departures: 0,
                queue_cap: None,
            };
        }
        Self {
            servers: vec![Server::default(); n],
            slab: JobSlab::new(),
            loads: vec![0; n],
            capacities: vec![1.0; n],
            up: vec![true; n],
            visible: vec![true; n],
            history: None,
            arrivals: 0,
            departures: 0,
            queue_cap: None,
        }
    }

    /// Creates a *heterogeneous* cluster: server `i` processes work at rate
    /// `capacities[i]` (a job of service demand `s` occupies it for
    /// `s / capacities[i]`). This is the paper's §6 future-work setting.
    ///
    /// # Panics
    ///
    /// Panics if `capacities` is empty or contains a non-positive or
    /// non-finite rate.
    pub fn with_capacities(capacities: &[f64]) -> Self {
        assert!(
            !capacities.is_empty(),
            "a cluster needs at least one server"
        );
        assert!(
            capacities.iter().all(|&c| c.is_finite() && c > 0.0),
            "capacities must be positive and finite"
        );
        let mut c = Self::new(capacities.len());
        c.capacities.clear();
        c.capacities.extend_from_slice(capacities);
        c
    }

    /// Creates a cluster that also records per-server load history.
    ///
    /// `keep_window` is how far back (in simulated time) queries must be
    /// answerable exactly; see [`LoadHistory`]. Only the continuous-update
    /// information model needs this.
    pub fn with_history(n: usize, keep_window: f64) -> Self {
        let mut c = Self::new(n);
        c.enable_history(keep_window);
        c
    }

    /// Turns on load-history recording (see [`Cluster::with_history`]).
    ///
    /// Must be called before any job is enqueued so the history is
    /// complete.
    ///
    /// # Panics
    ///
    /// Panics if jobs have already been processed.
    pub fn enable_history(&mut self, keep_window: f64) {
        assert_eq!(
            self.arrivals, 0,
            "history must be enabled before the first arrival"
        );
        self.history = Some(LoadHistory::new(self.servers.len(), keep_window));
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Whether the cluster has no servers (never true; see [`Cluster::new`]).
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Current load (queue length including the job in service) per server.
    pub fn loads(&self) -> &[u32] {
        &self.loads
    }

    /// Current load of one server.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn load(&self, server: ServerId) -> u32 {
        self.loads[server]
    }

    /// Total jobs accepted so far.
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    /// Total jobs completed so far.
    pub fn departures(&self) -> u64 {
        self.departures
    }

    /// Jobs currently in the system (queued or in service).
    pub fn in_system(&self) -> u64 {
        self.arrivals - self.departures
    }

    /// Places `job` on `server` at time `now`.
    ///
    /// Returns `Some(departure_time)` if the job goes straight into service
    /// (the server was idle), so the caller can schedule its departure;
    /// returns `None` if the job queued behind others (its departure will be
    /// returned by a later [`Cluster::complete`]).
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn enqueue(&mut self, server: ServerId, job: Job, now: f64) -> Option<f64> {
        self.arrivals += 1;
        self.place(server, job, now)
    }

    /// Sets (or clears) the per-server queue cap enforced by
    /// [`Cluster::admit`]: the maximum load, counting the job in service,
    /// a server will accept a *new arrival* at. Migrations via
    /// [`Cluster::requeue`] (work stealing, crash re-dispatch) are exempt
    /// — they move jobs already admitted to the system.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is `Some(0)`: a zero cap would reject every job.
    pub fn set_queue_cap(&mut self, cap: Option<u32>) {
        assert!(cap != Some(0), "queue cap must be at least 1");
        self.queue_cap = cap;
    }

    /// The queue cap enforced by [`Cluster::admit`], if any.
    pub fn queue_cap(&self) -> Option<u32> {
        self.queue_cap
    }

    /// Cap-aware admission: like [`Cluster::enqueue`] but bounces the job
    /// when `server`'s queue is at the cap set via
    /// [`Cluster::set_queue_cap`]. A rejected job never enters the system
    /// (no arrival is counted); the caller decides whether it retries or
    /// is lost.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn admit(&mut self, server: ServerId, job: Job, now: f64) -> Admission {
        if let Some(cap) = self.queue_cap {
            if self.loads[server] >= cap {
                return Admission::Rejected;
            }
        }
        match self.enqueue(server, job, now) {
            Some(dep) => Admission::InService(dep),
            None => Admission::Queued,
        }
    }

    /// Removes a *waiting* job by id from `server`'s queue at time `now`
    /// (deadline reneging). The job leaves the system — it counts as a
    /// departure but not a completion.
    ///
    /// `head_in_service` tells the cluster whether the queue head is
    /// currently being served (the cluster itself does not track remaining
    /// work): when `true` the head cannot renege, only jobs behind it can.
    /// Returns the removed job, or `None` if no waiting job with that id
    /// is present (already completed, already in service, or migrated
    /// elsewhere).
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn renege_waiting(
        &mut self,
        server: ServerId,
        job_id: u64,
        now: f64,
        head_in_service: bool,
    ) -> Option<Job> {
        let first_waiting = usize::from(head_in_service);
        let s = &mut self.servers[server];
        let job = s
            .queue
            .remove_by_id(&mut self.slab, job_id, first_waiting)?;
        self.loads[server] -= 1;
        self.departures += 1;
        if let Some(h) = &mut self.history {
            h.record(server, now, self.loads[server]);
        }
        Some(job)
    }

    /// Places `job` on `server` without counting a new arrival — for jobs
    /// *migrating* within the system (work stealing, crash re-dispatch).
    ///
    /// Same contract as [`Cluster::enqueue`] otherwise: returns the
    /// departure time if the job enters service immediately.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn requeue(&mut self, server: ServerId, job: Job, now: f64) -> Option<f64> {
        self.place(server, job, now)
    }

    fn place(&mut self, server: ServerId, job: Job, now: f64) -> Option<f64> {
        let capacity = self.capacities[server];
        let up = self.up[server];
        let s = &mut self.servers[server];
        // A job only enters service on an up, idle server; a down server
        // queues it for its recovery.
        let starts = up && s.queue.is_empty();
        if starts {
            s.busy_since = Some(now);
        }
        s.queue.push_back(&mut self.slab, job);
        self.loads[server] += 1;
        if let Some(h) = &mut self.history {
            h.record(server, now, self.loads[server]);
        }
        starts.then_some(now + job.service / capacity)
    }

    /// Completes the in-service job on `server` at time `now`.
    ///
    /// Returns the finished job and, if another job was waiting,
    /// `Some(departure_time)` of the job now entering service.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range or idle — completing a job on an
    /// idle server indicates a corrupted event schedule.
    pub fn complete(&mut self, server: ServerId, now: f64) -> (Job, Option<f64>) {
        debug_assert!(self.up[server], "a down server cannot complete a job");
        let s = &mut self.servers[server];
        let done = s
            .queue
            .pop_front(&mut self.slab)
            // lint: allow(panic-hygiene) — documented panicking API: completing an idle server is a corrupted schedule
            .expect("complete() on an idle server");
        s.completed += 1;
        self.loads[server] -= 1;
        self.departures += 1;
        if let Some(h) = &mut self.history {
            h.record(server, now, self.loads[server]);
        }
        let capacity = self.capacities[server];
        let s = &mut self.servers[server];
        let next = s
            .queue
            .front(&self.slab)
            .map(|j| now + j.service / capacity);
        if next.is_none() {
            if let Some(since) = s.busy_since.take() {
                s.busy_time += now - since;
            }
        }
        (done, next)
    }

    /// Jobs completed by one server.
    pub fn completed(&self, server: ServerId) -> u64 {
        self.servers[server].completed
    }

    /// Cumulative busy time of one server over completed busy periods.
    ///
    /// Useful for utilization checks in tests; excludes any in-progress busy
    /// period.
    pub fn busy_time(&self, server: ServerId) -> f64 {
        self.servers[server].busy_time
    }

    /// Fills `out` with the load vector as of time `at`.
    ///
    /// # Panics
    ///
    /// Panics if the cluster was not created with
    /// [`Cluster::with_history`].
    pub fn loads_at(&mut self, at: f64, out: &mut Vec<u32>) {
        let h = self
            .history
            .as_mut()
            // lint: allow(panic-hygiene) — documented panicking API: the caller must enable history first
            .expect("loads_at() requires a cluster built with_history()");
        h.fill_loads_at(at, out);
    }

    /// Number of history queries that fell before the retained window and
    /// were answered with the oldest retained entry (0 when exact).
    pub fn history_misses(&self) -> u64 {
        self.history.as_ref().map_or(0, LoadHistory::misses)
    }

    /// Per-server service rates (all 1.0 for a homogeneous cluster).
    pub fn capacities(&self) -> &[f64] {
        &self.capacities
    }

    /// Whether `server` is up (servers only go down under fault
    /// injection).
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn is_up(&self, server: ServerId) -> bool {
        self.up[server]
    }

    /// Number of servers currently up.
    pub fn up_count(&self) -> usize {
        self.up.iter().filter(|&&u| u).count()
    }

    /// Whether `server`'s load reports currently reach the bulletin board
    /// (always true outside partition fault injection). An invisible
    /// server keeps serving — only its *reports* are lost, so the board
    /// models skip its refresh and its entry decays in place.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn is_visible(&self, server: ServerId) -> bool {
        self.visible[server]
    }

    /// Marks `server` as (in)visible to the information plane (partition
    /// fault injection). Idempotent: partitioning an already-invisible
    /// server is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn set_visible(&mut self, server: ServerId, visible: bool) {
        self.visible[server] = visible;
    }

    /// Id of the job at the head of `server`'s queue (the job in service
    /// when the server is up and busy), if any.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn head_job_id(&self, server: ServerId) -> Option<u64> {
        self.servers[server].queue.front(&self.slab).map(|j| j.id)
    }

    /// Removes a *waiting* replica by id from `server`'s queue at time
    /// `now` (hedge cancellation). Unlike [`Cluster::renege_waiting`] the
    /// job does *not* count as a departure: a cancelled hedge replica was
    /// never an arrival (it was placed with [`Cluster::requeue`]), so
    /// removing it must not touch the conservation counters.
    ///
    /// Same head semantics as reneging: when `head_in_service` is true the
    /// queue head is being served and only jobs behind it are eligible.
    /// Returns the removed job, or `None` if no waiting job with that id
    /// is present.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn cancel_waiting(
        &mut self,
        server: ServerId,
        job_id: u64,
        now: f64,
        head_in_service: bool,
    ) -> Option<Job> {
        let first_waiting = usize::from(head_in_service);
        let s = &mut self.servers[server];
        let job = s
            .queue
            .remove_by_id(&mut self.slab, job_id, first_waiting)?;
        self.loads[server] -= 1;
        if let Some(h) = &mut self.history {
            h.record(server, now, self.loads[server]);
        }
        Some(job)
    }

    /// Aborts the *in-service* job on `server` at time `now` (hedge
    /// cancellation of a replica that already entered service). The job
    /// vanishes without counting as a completion or departure; if another
    /// job was waiting it enters service and its departure time is
    /// returned.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range, down, or idle — aborting
    /// service on a server that isn't serving indicates a corrupted hedge
    /// book.
    pub fn abort_in_service(&mut self, server: ServerId, now: f64) -> Option<f64> {
        assert!(self.up[server], "abort_in_service() on a down server");
        let s = &mut self.servers[server];
        let _gone = s
            .queue
            .pop_front(&mut self.slab)
            // lint: allow(panic-hygiene) — documented panicking API: aborting an idle server is a corrupted hedge book
            .expect("abort_in_service() on an idle server");
        self.loads[server] -= 1;
        if let Some(h) = &mut self.history {
            h.record(server, now, self.loads[server]);
        }
        let capacity = self.capacities[server];
        let s = &mut self.servers[server];
        let next = s
            .queue
            .front(&self.slab)
            .map(|j| now + j.service / capacity);
        if next.is_none() {
            if let Some(since) = s.busy_since.take() {
                s.busy_time += now - since;
            }
        }
        next
    }

    /// Takes `server` down at time `now` (fault injection).
    ///
    /// Service stops immediately: the in-service job keeps its place at
    /// the head of the queue (the caller tracks its remaining work), and
    /// the server's busy period is closed for utilization accounting.
    /// Queued jobs stay put unless the caller drains them with
    /// [`Cluster::drain`].
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range or already down.
    pub fn crash(&mut self, server: ServerId, now: f64) {
        assert!(self.up[server], "crash() on a server that is already down");
        self.up[server] = false;
        let s = &mut self.servers[server];
        if let Some(since) = s.busy_since.take() {
            s.busy_time += now - since;
        }
    }

    /// Removes and returns every job queued on a *down* server
    /// (crash re-dispatch mode), head first.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range or still up.
    pub fn drain(&mut self, server: ServerId, now: f64) -> Vec<Job> {
        assert!(!self.up[server], "drain() is only for crashed servers");
        let s = &mut self.servers[server];
        let mut jobs = Vec::with_capacity(s.queue.len());
        s.queue.drain_into(&mut self.slab, &mut jobs);
        self.loads[server] = 0;
        if let Some(h) = &mut self.history {
            h.record(server, now, 0);
        }
        jobs
    }

    /// Brings `server` back up at time `now`.
    ///
    /// If jobs are waiting, the head re-enters service: it completes after
    /// `frozen_remaining` if given (the wall-clock work it had left when
    /// the crash interrupted it), otherwise after its full service demand.
    /// Returns the departure time to schedule, or `None` if the server
    /// comes back idle.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range or already up.
    pub fn recover(
        &mut self,
        server: ServerId,
        now: f64,
        frozen_remaining: Option<f64>,
    ) -> Option<f64> {
        assert!(!self.up[server], "recover() on a server that is already up");
        self.up[server] = true;
        let capacity = self.capacities[server];
        let s = &mut self.servers[server];
        let head = s.queue.front(&self.slab)?;
        s.busy_since = Some(now);
        Some(now + frozen_remaining.unwrap_or(head.service / capacity))
    }

    /// Receiver-driven rebalancing (paper §2, option 3 — future work we
    /// implement as an extension): the idle server `thief` pulls the most
    /// recently queued *waiting* job from the server with the longest
    /// queue, if any server has at least `min_victim_load` jobs.
    ///
    /// Returns the stolen job's departure time on the thief (which starts
    /// serving it immediately), or `None` if no job was worth stealing.
    ///
    /// # Panics
    ///
    /// Panics if `thief` is out of range or not idle.
    pub fn steal_for_idle(
        &mut self,
        thief: ServerId,
        now: f64,
        min_victim_load: u32,
    ) -> Option<f64> {
        assert!(self.loads[thief] == 0, "only an idle server may steal");
        assert!(self.up[thief], "a down server cannot steal");
        let Some((victim, &load)) = self.loads.iter().enumerate().max_by_key(|&(_, &l)| l) else {
            return None; // zero-server cluster: nothing to steal
        };
        if victim == thief || load < min_victim_load.max(2) {
            return None;
        }
        let Some(job) = self.servers[victim].queue.pop_back(&mut self.slab) else {
            return None; // victim drained between the load read and the pop
        };
        self.loads[victim] -= 1;
        if let Some(h) = &mut self.history {
            h.record(victim, now, self.loads[victim]);
        }
        // Via requeue(), not enqueue(): a migration is not a new arrival.
        self.requeue(thief, job, now)
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        // try_with: a cluster dropped during thread teardown (after the
        // pool's TLS destructor ran) simply frees its memory.
        let _ = CLUSTER_POOL.try_with(|pool| {
            let mut pool = pool.borrow_mut();
            if pool.len() < CLUSTER_POOL_DEPTH {
                pool.push(ClusterParts {
                    servers: std::mem::take(&mut self.servers),
                    slab: std::mem::take(&mut self.slab),
                    loads: std::mem::take(&mut self.loads),
                    capacities: std::mem::take(&mut self.capacities),
                    up: std::mem::take(&mut self.up),
                    visible: std::mem::take(&mut self.visible),
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_server_serves_immediately() {
        let mut c = Cluster::new(3);
        assert_eq!(c.enqueue(1, Job::new(0, 0.0, 2.0), 0.0), Some(2.0));
        assert_eq!(c.loads(), &[0, 1, 0]);
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut c = Cluster::new(1);
        c.enqueue(0, Job::new(0, 0.0, 1.0), 0.0);
        c.enqueue(0, Job::new(1, 0.1, 1.0), 0.1);
        c.enqueue(0, Job::new(2, 0.2, 1.0), 0.2);
        let (j0, n0) = c.complete(0, 1.0);
        assert_eq!(j0.id, 0);
        assert_eq!(n0, Some(2.0));
        let (j1, n1) = c.complete(0, 2.0);
        assert_eq!(j1.id, 1);
        assert_eq!(n1, Some(3.0));
        let (j2, n2) = c.complete(0, 3.0);
        assert_eq!(j2.id, 2);
        assert_eq!(n2, None);
    }

    #[test]
    fn conservation_counters() {
        let mut c = Cluster::new(2);
        for i in 0..5 {
            c.enqueue(
                (i % 2) as usize,
                Job::new(i, i as f64 * 0.1, 1.0),
                i as f64 * 0.1,
            );
        }
        assert_eq!(c.arrivals(), 5);
        assert_eq!(c.in_system(), 5);
        c.complete(0, 1.0);
        c.complete(1, 1.1);
        assert_eq!(c.departures(), 2);
        assert_eq!(c.in_system(), 3);
    }

    #[test]
    #[should_panic(expected = "idle server")]
    fn complete_on_idle_panics() {
        let mut c = Cluster::new(1);
        c.complete(0, 1.0);
    }

    #[test]
    fn busy_time_accounting() {
        let mut c = Cluster::new(1);
        c.enqueue(0, Job::new(0, 0.0, 2.0), 0.0);
        c.complete(0, 2.0);
        assert!((c.busy_time(0) - 2.0).abs() < 1e-12);
        // A gap, then another busy period.
        c.enqueue(0, Job::new(1, 5.0, 1.0), 5.0);
        c.complete(0, 6.0);
        assert!((c.busy_time(0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_service_job_departs_immediately() {
        let mut c = Cluster::new(1);
        assert_eq!(c.enqueue(0, Job::new(0, 1.0, 0.0), 1.0), Some(1.0));
        let (j, next) = c.complete(0, 1.0);
        assert_eq!(j.id, 0);
        assert_eq!(next, None);
        assert_eq!(c.load(0), 0);
    }

    #[test]
    fn historical_loads_reflect_past_state() {
        let mut c = Cluster::with_history(2, 100.0);
        c.enqueue(0, Job::new(0, 1.0, 10.0), 1.0);
        c.enqueue(0, Job::new(1, 2.0, 10.0), 2.0);
        c.enqueue(1, Job::new(2, 3.0, 10.0), 3.0);
        let mut out = Vec::new();
        c.loads_at(0.5, &mut out);
        assert_eq!(out, &[0, 0]);
        c.loads_at(1.5, &mut out);
        assert_eq!(out, &[1, 0]);
        c.loads_at(2.5, &mut out);
        assert_eq!(out, &[2, 0]);
        c.loads_at(3.5, &mut out);
        assert_eq!(out, &[2, 1]);
        assert_eq!(c.history_misses(), 0);
    }

    #[test]
    fn heterogeneous_capacity_scales_service() {
        let mut c = Cluster::with_capacities(&[2.0, 0.5]);
        // Demand 1 takes 0.5 on the fast server, 2.0 on the slow one.
        assert_eq!(c.enqueue(0, Job::new(0, 0.0, 1.0), 0.0), Some(0.5));
        assert_eq!(c.enqueue(1, Job::new(1, 0.0, 1.0), 0.0), Some(2.0));
        // Queued job inherits the serving server's rate on promotion.
        c.enqueue(0, Job::new(2, 0.1, 1.0), 0.1);
        let (_, next) = c.complete(0, 0.5);
        assert_eq!(next, Some(1.0));
        assert_eq!(c.capacities(), &[2.0, 0.5]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_is_rejected() {
        let _ = Cluster::with_capacities(&[1.0, 0.0]);
    }

    #[test]
    fn stealing_moves_last_waiting_job() {
        let mut c = Cluster::new(2);
        c.enqueue(0, Job::new(0, 0.0, 5.0), 0.0);
        c.enqueue(0, Job::new(1, 0.1, 1.0), 0.1);
        c.enqueue(0, Job::new(2, 0.2, 2.0), 0.2);
        // Server 1 is idle and steals job 2 (the tail of server 0's queue).
        let dep = c.steal_for_idle(1, 1.0, 2);
        assert_eq!(dep, Some(3.0));
        assert_eq!(c.loads(), &[2, 1]);
        let (job, _) = c.complete(1, 3.0);
        assert_eq!(job.id, 2);
        // Conservation: migration is not an arrival.
        assert_eq!(c.arrivals(), 3);
    }

    #[test]
    fn stealing_respects_min_victim_load() {
        let mut c = Cluster::new(2);
        c.enqueue(0, Job::new(0, 0.0, 5.0), 0.0);
        // Only one job (in service): nothing to steal.
        assert_eq!(c.steal_for_idle(1, 1.0, 2), None);
        c.enqueue(0, Job::new(1, 0.1, 1.0), 0.1);
        // Two jobs but the threshold demands 3.
        assert_eq!(c.steal_for_idle(1, 1.0, 3), None);
        assert!(c.steal_for_idle(1, 1.0, 2).is_some());
    }

    #[test]
    #[should_panic(expected = "idle")]
    fn busy_server_cannot_steal() {
        let mut c = Cluster::new(2);
        c.enqueue(0, Job::new(0, 0.0, 5.0), 0.0);
        c.enqueue(1, Job::new(1, 0.0, 5.0), 0.0);
        let _ = c.steal_for_idle(1, 1.0, 2);
    }

    #[test]
    #[should_panic(expected = "with_history")]
    fn loads_at_without_history_panics() {
        let mut c = Cluster::new(1);
        let mut out = Vec::new();
        c.loads_at(0.0, &mut out);
    }

    #[test]
    fn crash_freezes_service_and_recover_resumes() {
        let mut c = Cluster::new(2);
        // Job of demand 4 starts at t=0, would finish at t=4.
        assert_eq!(c.enqueue(0, Job::new(0, 0.0, 4.0), 0.0), Some(4.0));
        c.enqueue(0, Job::new(1, 0.5, 1.0), 0.5);
        assert!(c.is_up(1));
        c.crash(0, 1.0);
        assert!(!c.is_up(0));
        assert_eq!(c.up_count(), 1);
        // Busy period closed at the crash: 1.0 of busy time so far.
        assert!((c.busy_time(0) - 1.0).abs() < 1e-12);
        // Loads are untouched: the jobs still occupy the queue.
        assert_eq!(c.loads(), &[2, 0]);
        // Recovery at t=10 resumes the head with its remaining 3.0.
        let dep = c.recover(0, 10.0, Some(3.0));
        assert_eq!(dep, Some(13.0));
        let (j, next) = c.complete(0, 13.0);
        assert_eq!(j.id, 0);
        assert_eq!(next, Some(14.0));
    }

    #[test]
    fn down_server_queues_without_serving() {
        let mut c = Cluster::new(1);
        c.crash(0, 0.0);
        // An idle but down server must not start service.
        assert_eq!(c.enqueue(0, Job::new(0, 1.0, 2.0), 1.0), None);
        assert_eq!(c.loads(), &[1]);
        // It comes back with a never-started head: full demand from now.
        assert_eq!(c.recover(0, 5.0, None), Some(7.0));
    }

    #[test]
    fn recover_on_empty_queue_returns_none() {
        let mut c = Cluster::new(1);
        c.crash(0, 0.0);
        assert_eq!(c.recover(0, 1.0, None), None);
        assert!(c.is_up(0));
    }

    #[test]
    fn drain_empties_a_crashed_server() {
        let mut c = Cluster::new(2);
        c.enqueue(0, Job::new(0, 0.0, 5.0), 0.0);
        c.enqueue(0, Job::new(1, 0.1, 1.0), 0.1);
        c.enqueue(0, Job::new(2, 0.2, 2.0), 0.2);
        c.crash(0, 1.0);
        let jobs = c.drain(0, 1.0);
        assert_eq!(jobs.iter().map(|j| j.id).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(c.loads(), &[0, 0]);
        // The displaced jobs migrate without counting as arrivals.
        for job in jobs {
            c.requeue(1, job, 1.0);
        }
        assert_eq!(c.arrivals(), 3);
        assert_eq!(c.loads(), &[0, 3]);
        assert_eq!(c.in_system(), 3);
    }

    #[test]
    #[should_panic(expected = "already down")]
    fn double_crash_panics() {
        let mut c = Cluster::new(1);
        c.crash(0, 0.0);
        c.crash(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "already up")]
    fn recover_up_server_panics() {
        let mut c = Cluster::new(1);
        c.recover(0, 0.0, None);
    }

    #[test]
    fn admit_respects_queue_cap() {
        let mut c = Cluster::new(2);
        c.set_queue_cap(Some(2));
        assert_eq!(c.queue_cap(), Some(2));
        assert_eq!(
            c.admit(0, Job::new(0, 0.0, 5.0), 0.0),
            Admission::InService(5.0)
        );
        assert_eq!(c.admit(0, Job::new(1, 0.1, 1.0), 0.1), Admission::Queued);
        // Load 2 == cap: full.
        assert_eq!(c.admit(0, Job::new(2, 0.2, 1.0), 0.2), Admission::Rejected);
        // The other server still has room.
        assert_eq!(
            c.admit(1, Job::new(2, 0.2, 1.0), 0.2),
            Admission::InService(1.2)
        );
        // Rejected jobs never counted as arrivals.
        assert_eq!(c.arrivals(), 3);
        // A completion frees a slot.
        c.complete(0, 5.0);
        assert_eq!(c.admit(0, Job::new(3, 5.0, 1.0), 5.0), Admission::Queued);
    }

    #[test]
    fn admit_without_cap_is_enqueue() {
        let mut c = Cluster::new(1);
        for i in 0..10 {
            assert_ne!(c.admit(0, Job::new(i, 0.0, 1.0), 0.0), Admission::Rejected);
        }
        assert_eq!(c.arrivals(), 10);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_queue_cap_panics() {
        let mut c = Cluster::new(1);
        c.set_queue_cap(Some(0));
    }

    #[test]
    fn renege_removes_waiting_job_only() {
        let mut c = Cluster::new(1);
        c.enqueue(0, Job::new(0, 0.0, 5.0), 0.0);
        c.enqueue(0, Job::new(1, 0.1, 1.0), 0.1);
        c.enqueue(0, Job::new(2, 0.2, 2.0), 0.2);
        // Job 0 is in service: it cannot renege.
        assert_eq!(c.renege_waiting(0, 0, 1.0, true), None);
        // Job 1 waits and can.
        let gone = c.renege_waiting(0, 1, 1.0, true).expect("job 1 waits");
        assert_eq!(gone.id, 1);
        assert_eq!(c.loads(), &[2]);
        assert_eq!(c.departures(), 1);
        assert_eq!(c.in_system(), 2);
        // FIFO order of the remainder is intact: 0 then 2.
        let (j, next) = c.complete(0, 5.0);
        assert_eq!(j.id, 0);
        assert_eq!(next, Some(7.0));
        let (j, _) = c.complete(0, 7.0);
        assert_eq!(j.id, 2);
    }

    #[test]
    fn renege_on_down_server_head() {
        let mut c = Cluster::new(1);
        c.crash(0, 0.0);
        c.enqueue(0, Job::new(0, 1.0, 2.0), 1.0);
        // Down server: the head never started service, so it may renege.
        let gone = c.renege_waiting(0, 0, 3.0, false).expect("head waits");
        assert_eq!(gone.id, 0);
        assert_eq!(c.loads(), &[0]);
        assert_eq!(c.recover(0, 5.0, None), None);
    }

    #[test]
    fn renege_missing_job_is_none() {
        let mut c = Cluster::new(1);
        c.enqueue(0, Job::new(0, 0.0, 5.0), 0.0);
        assert_eq!(c.renege_waiting(0, 42, 1.0, true), None);
        assert_eq!(c.departures(), 0);
    }

    #[test]
    fn visibility_is_information_plane_only() {
        let mut c = Cluster::new(2);
        assert!(c.is_visible(0) && c.is_visible(1));
        c.set_visible(1, false);
        assert!(!c.is_visible(1));
        assert!(c.is_up(1), "partition does not take the server down");
        // The invisible server still serves jobs.
        assert_eq!(c.enqueue(1, Job::new(0, 0.0, 2.0), 0.0), Some(2.0));
        c.set_visible(1, true);
        assert!(c.is_visible(1));
    }

    #[test]
    fn head_job_id_tracks_the_queue_head() {
        let mut c = Cluster::new(1);
        assert_eq!(c.head_job_id(0), None);
        c.enqueue(0, Job::new(7, 0.0, 1.0), 0.0);
        c.enqueue(0, Job::new(8, 0.1, 1.0), 0.1);
        assert_eq!(c.head_job_id(0), Some(7));
        c.complete(0, 1.0);
        assert_eq!(c.head_job_id(0), Some(8));
    }

    #[test]
    fn cancel_waiting_does_not_count_a_departure() {
        let mut c = Cluster::new(1);
        c.enqueue(0, Job::new(0, 0.0, 5.0), 0.0);
        // A hedge replica migrates in via requeue (no arrival count)...
        c.requeue(0, Job::new(1, 0.1, 1.0), 0.1);
        assert_eq!(c.arrivals(), 1);
        assert_eq!(c.loads(), &[2]);
        // ...and is cancelled without touching the conservation counters.
        let gone = c.cancel_waiting(0, 1, 1.0, true).expect("replica waits");
        assert_eq!(gone.id, 1);
        assert_eq!(c.loads(), &[1]);
        assert_eq!(c.departures(), 0);
        assert_eq!(c.in_system(), 1);
        // The in-service head is not eligible.
        assert_eq!(c.cancel_waiting(0, 0, 1.0, true), None);
    }

    #[test]
    fn abort_in_service_promotes_the_next_job() {
        let mut c = Cluster::new(1);
        c.enqueue(0, Job::new(0, 0.0, 5.0), 0.0);
        c.requeue(0, Job::new(1, 0.1, 2.0), 0.1);
        // Aborting the serving replica promotes job 1 with its full demand.
        let next = c.abort_in_service(0, 1.0);
        assert_eq!(next, Some(3.0));
        assert_eq!(c.loads(), &[1]);
        assert_eq!(c.departures(), 0);
        assert_eq!(c.completed(0), 0);
        let (j, next) = c.complete(0, 3.0);
        assert_eq!(j.id, 1);
        assert_eq!(next, None);
    }

    #[test]
    fn abort_in_service_on_emptied_server_closes_busy_period() {
        let mut c = Cluster::new(1);
        c.enqueue(0, Job::new(0, 0.0, 4.0), 0.0);
        assert_eq!(c.abort_in_service(0, 1.0), None);
        assert_eq!(c.loads(), &[0]);
        assert!((c.busy_time(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "idle server")]
    fn abort_in_service_on_idle_panics() {
        let mut c = Cluster::new(1);
        c.abort_in_service(0, 1.0);
    }
}
