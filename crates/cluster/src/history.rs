//! Per-server load history for delayed (stale) views.

use std::collections::VecDeque;

/// A record of each server's load changes over a sliding window of time.
///
/// The continuous-update model of old information (paper §3.1) lets every
/// arriving job observe the *exact* system state some delay `d` in the past.
/// `LoadHistory` supports that query precisely: each server keeps a
/// time-ordered list of `(time, load)` change points, pruned to a
/// configurable window.
///
/// Queries older than the retained window are answered with the oldest
/// retained entry and counted in [`LoadHistory::misses`], so a simulation can
/// verify that its window was wide enough (the drivers in `staleload-core`
/// assert this in tests).
#[derive(Debug, Clone)]
pub struct LoadHistory {
    per_server: Vec<VecDeque<(f64, u32)>>,
    pruned: Vec<bool>,
    keep_window: f64,
    misses: u64,
}

/// The recyclable allocations of one retired [`LoadHistory`]: its
/// per-server change-point deques and the pruned flags.
type PooledBuffers = (Vec<VecDeque<(f64, u32)>>, Vec<bool>);

thread_local! {
    /// Change-point deques recycled across trials on one worker thread.
    /// Only capacity survives: [`LoadHistory::new`] clears every deque.
    static HISTORY_POOL: std::cell::RefCell<Vec<PooledBuffers>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

const HISTORY_POOL_DEPTH: usize = 4;

impl Drop for LoadHistory {
    fn drop(&mut self) {
        let _ = HISTORY_POOL.try_with(|pool| {
            let mut pool = pool.borrow_mut();
            if pool.len() < HISTORY_POOL_DEPTH {
                pool.push((
                    std::mem::take(&mut self.per_server),
                    std::mem::take(&mut self.pruned),
                ));
            }
        });
    }
}

impl LoadHistory {
    /// Creates a history for `n` servers retaining roughly `keep_window`
    /// time units of change points.
    ///
    /// # Panics
    ///
    /// Panics if `keep_window` is negative or NaN.
    pub fn new(n: usize, keep_window: f64) -> Self {
        assert!(keep_window >= 0.0, "keep_window must be non-negative");
        if let Some((mut per_server, mut pruned)) =
            HISTORY_POOL.with(|pool| pool.borrow_mut().pop())
        {
            for deque in &mut per_server {
                deque.clear();
            }
            per_server.resize(n, VecDeque::new());
            pruned.clear();
            pruned.resize(n, false);
            return Self {
                per_server,
                pruned,
                keep_window,
                misses: 0,
            };
        }
        Self {
            per_server: vec![VecDeque::new(); n],
            pruned: vec![false; n],
            keep_window,
            misses: 0,
        }
    }

    /// Records that `server`'s load became `load` at time `now`.
    ///
    /// Times must be non-decreasing per server (simulation time never runs
    /// backwards).
    pub fn record(&mut self, server: usize, now: f64, load: u32) {
        let h = &mut self.per_server[server];
        debug_assert!(
            h.back().is_none_or(|&(t, _)| t <= now),
            "history time went backwards"
        );
        h.push_back((now, load));
        // Prune, but always keep at least one entry at or before the window
        // start so old queries still resolve to the correct value.
        let horizon = now - self.keep_window;
        while h.len() >= 2 && h[1].0 <= horizon {
            h.pop_front();
            self.pruned[server] = true;
        }
    }

    /// The load of `server` as of time `at` (0 before the first change).
    pub fn load_at(&self, server: usize, at: f64) -> u32 {
        let h = &self.per_server[server];
        // Find the last change point with time <= at.
        let idx = h.partition_point(|&(t, _)| t <= at);
        if idx == 0 {
            // Either genuinely before the first event (load 0 at start of
            // simulation) or pruned; `fill_loads_at` tracks misses.
            if h.front().is_some_and(|&(t, _)| t <= at) {
                h.front().map_or(0, |&(_, l)| l)
            } else {
                0
            }
        } else {
            h[idx - 1].1
        }
    }

    /// Fills `out` with every server's load as of time `at`.
    pub fn fill_loads_at(&mut self, at: f64, out: &mut Vec<u32>) {
        out.clear();
        for server in 0..self.per_server.len() {
            let h = &self.per_server[server];
            let idx = h.partition_point(|&(t, _)| t <= at);
            if idx == 0 {
                match h.front() {
                    // History was pruned past `at`: best effort, count it.
                    Some(&(t, l)) if t > at && self.pruned[server] => {
                        self.misses += 1;
                        out.push(l);
                    }
                    // Genuinely before the server's first job: idle.
                    _ => out.push(0),
                }
            } else {
                out.push(h[idx - 1].1);
            }
        }
    }

    /// Number of queries answered inexactly because the window was too short.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_at_steps_through_changes() {
        let mut h = LoadHistory::new(1, 1e9);
        h.record(0, 1.0, 1);
        h.record(0, 2.0, 2);
        h.record(0, 3.0, 1);
        assert_eq!(h.load_at(0, 0.5), 0);
        assert_eq!(h.load_at(0, 1.0), 1);
        assert_eq!(h.load_at(0, 1.9), 1);
        assert_eq!(h.load_at(0, 2.0), 2);
        assert_eq!(h.load_at(0, 2.5), 2);
        assert_eq!(h.load_at(0, 10.0), 1);
    }

    #[test]
    fn pruning_keeps_window_queries_exact() {
        let mut h = LoadHistory::new(1, 10.0);
        for i in 0..1000 {
            let t = i as f64;
            h.record(0, t, (i % 5 + 1) as u32);
        }
        // Query inside the window: exact.
        assert_eq!(h.load_at(0, 995.5), 1); // 995 % 5 + 1
        let mut out = Vec::new();
        h.fill_loads_at(992.3, &mut out);
        assert_eq!(out[0], (992 % 5 + 1) as u32);
        assert_eq!(h.misses(), 0);
    }

    #[test]
    fn pruning_bounds_memory() {
        let mut h = LoadHistory::new(1, 5.0);
        for i in 0..100_000 {
            h.record(0, i as f64 * 0.01, 1 + (i % 3) as u32);
        }
        // 5.0 time units at 0.01 spacing is ~500 entries, plus slack.
        assert!(
            h.per_server[0].len() < 1000,
            "len {}",
            h.per_server[0].len()
        );
    }

    #[test]
    fn miss_counter_detects_too_old_queries() {
        let mut h = LoadHistory::new(1, 1.0);
        for i in 0..100 {
            h.record(0, i as f64, 2 + (i % 3) as u32);
        }
        let mut out = Vec::new();
        h.fill_loads_at(0.5, &mut out);
        assert!(h.misses() > 0);
    }

    #[test]
    fn before_first_event_is_idle() {
        let mut h = LoadHistory::new(2, 100.0);
        h.record(0, 5.0, 1);
        let mut out = Vec::new();
        h.fill_loads_at(1.0, &mut out);
        assert_eq!(out, &[0, 0]);
        assert_eq!(h.misses(), 0);
    }
}
