//! Property-based tests for the queueing substrate.
//!
//! These drive a random but *valid* event sequence against a [`Cluster`] and
//! check conservation, FIFO, and history invariants.

// Proptest closures sit outside #[test] fns, so clippy's
// allow-unwrap-in-tests does not reach them; the whole file is a test.
#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use staleload_cluster::{Cluster, Job};
use staleload_sim::{EventQueue, SimRng};

/// Replays a random workload through a cluster and returns
/// (arrivals, departures, per-job (arrival, departure) pairs).
fn run_random_workload(
    n_servers: usize,
    n_jobs: u64,
    seed: u64,
    with_history: bool,
) -> (Cluster, Vec<(u64, f64, f64)>) {
    let mut rng = SimRng::from_seed(seed);
    let mut cluster = if with_history {
        Cluster::with_history(n_servers, 1e9)
    } else {
        Cluster::new(n_servers)
    };
    let mut events: EventQueue<usize> = EventQueue::new();
    let mut completions = Vec::new();

    let mut t;
    let mut next_id = 0u64;
    let mut next_arrival = 0.0f64;
    loop {
        let arrivals_done = next_id >= n_jobs;
        let next_departure = events.peek_time();
        match (arrivals_done, next_departure) {
            (true, None) => break,
            (false, Some(d)) if d <= next_arrival => {
                let (_, server) = events.pop().unwrap();
                t = d;
                let (job, next) = cluster.complete(server, t);
                completions.push((job.id, job.arrival, t));
                if let Some(dep) = next {
                    events.push(dep, server);
                }
            }
            (false, _) => {
                t = next_arrival;
                let server = rng.index(n_servers);
                let job = Job::new(next_id, t, rng.exp(1.0));
                next_id += 1;
                if let Some(dep) = cluster.enqueue(server, job, t) {
                    events.push(dep, server);
                }
                next_arrival = t + rng.exp(0.5);
            }
            (true, Some(d)) => {
                let (_, server) = events.pop().unwrap();
                t = d;
                let (job, next) = cluster.complete(server, t);
                completions.push((job.id, job.arrival, t));
                if let Some(dep) = next {
                    events.push(dep, server);
                }
            }
        }
    }
    (cluster, completions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every arrival eventually departs, exactly once.
    #[test]
    fn jobs_are_conserved(n_servers in 1usize..8, n_jobs in 1u64..300, seed in any::<u64>()) {
        let (cluster, completions) = run_random_workload(n_servers, n_jobs, seed, false);
        prop_assert_eq!(cluster.arrivals(), n_jobs);
        prop_assert_eq!(cluster.departures(), n_jobs);
        prop_assert_eq!(cluster.in_system(), 0);
        let mut ids: Vec<u64> = completions.iter().map(|&(id, _, _)| id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len() as u64, n_jobs);
    }

    /// Response times are non-negative and at least the service demand
    /// (here: at least 0, and departures never precede arrivals).
    #[test]
    fn departures_follow_arrivals(n_servers in 1usize..8, n_jobs in 1u64..300, seed in any::<u64>()) {
        let (_, completions) = run_random_workload(n_servers, n_jobs, seed, false);
        for (_, arrival, departure) in completions {
            prop_assert!(departure >= arrival);
        }
    }

    /// Final loads are all zero and never went negative (u32 would panic).
    #[test]
    fn final_loads_zero(n_servers in 1usize..8, n_jobs in 1u64..200, seed in any::<u64>()) {
        let (cluster, _) = run_random_workload(n_servers, n_jobs, seed, false);
        prop_assert!(cluster.loads().iter().all(|&l| l == 0));
    }

    /// A cluster with an unbounded history window answers every past query
    /// exactly (no misses) and the t=+inf query matches the live loads.
    #[test]
    fn history_is_exact_with_unbounded_window(
        n_servers in 1usize..6,
        n_jobs in 1u64..200,
        seed in any::<u64>(),
        query in 0.0f64..50.0,
    ) {
        let (mut cluster, _) = run_random_workload(n_servers, n_jobs, seed, true);
        let mut out = Vec::new();
        cluster.loads_at(query, &mut out);
        prop_assert_eq!(out.len(), n_servers);
        cluster.loads_at(f64::MAX, &mut out);
        let live = cluster.loads().to_vec();
        prop_assert_eq!(out, live);
        prop_assert_eq!(cluster.history_misses(), 0);
    }
}
