//! `staleload` — command-line front end for the stale-load-information
//! simulator.
//!
//! ```text
//! staleload run     [flags]   # one policy, full statistics
//! staleload compare [flags]   # panel of standard policies, one table
//! staleload rank --n <N> --k <K1,K2,...>   # analytic Eq. 1 distribution
//! staleload theory --lambda <L> [--servers <N>]  # closed-form anchors
//! staleload help
//! ```
//!
//! Common flags for `run`/`compare`:
//! `--servers N --lambda F --arrivals N --trials N --seed N`
//! `--policy <spec>` (run only), `--info <spec>`, `--service <spec>`,
//! `--capacities <spec>`, `--stealing <MIN>`, `--burst <LEN>:<GAP>`,
//! `--queue-cap <N>`, `--deadline <T>`, `--retry <MAX>:<BASE>:<CAP>`,
//! `--guard <THR>:<COOLDOWN>`, `--partition <MTBF>:<DUR>:<FRAC>[:correlated]`,
//! `--churn <MTBF>:<DOWNTIME>`, `--corrupt <FRAC>`, `--hedge <H>`,
//! `--quarantine <WINDOW>:<BACKOFF>`, `--scheduler <heap|calendar>`,
//! `--watchdog <SECS>`, `--detail`.

#![forbid(unsafe_code)]
// The CLI is a terminal tool; stdout is its interface.
#![allow(clippy::print_stdout)]

mod args;

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use args::{parse_run, RunArgs};
use staleload_core::{trial_seed, Experiment, ExperimentResult, TrialFailure, TrialOutcome};
use staleload_policies::{rank_distribution, PolicySpec};
use staleload_runner::{run_guarded, WatchdogSpec};
use staleload_stats::Table;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = match argv.split_first() {
        Some((c, rest)) => (c.as_str(), rest),
        None => ("help", &[][..]),
    };
    let result = match command {
        "run" => parse_run(rest).and_then(|a| cmd_run(&a)),
        "compare" => parse_run(rest).and_then(|a| cmd_compare(&a)),
        "rank" => cmd_rank(rest),
        "theory" => cmd_theory(rest),
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        other => Err(format!("unknown command '{other}' (try `staleload help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    println!(
        "staleload — load balancing with stale information (Dahlin, ICDCS 1999)\n\n\
         USAGE:\n  staleload run     [flags]   one policy, full statistics\n  \
         staleload compare [flags]   standard policy panel as a table\n  \
         staleload rank --n <N> --k <K,...>   analytic k-subset rank distribution\n  \
         staleload theory --lambda <L> [--servers <N>]   closed-form anchors\n\n\
         FLAGS (run/compare):\n  \
         --servers N        number of servers (100)\n  \
         --lambda F         per-server load (0.9)\n  \
         --arrivals N       jobs per trial (200000)\n  \
         --trials N         independent seeds (5)\n  \
         --seed N           master seed (1)\n  \
         --policy SPEC      random | greedy | k:<K> | threshold:<T> | basic-li |\n                     \
         aggressive-li | hybrid-li | li:<K> | decay:<TAU> |\n                     \
         adaptive-li | hetero-li\n  \
         --info SPEC        fresh | periodic:<T> | continuous:<const|unarrow|uwide|exp>:<T>[:actual] | uoa:<T> |\n                     \
         ewma:<ALPHA>[:<T>] | ma:<W1>,<W2>,<W3>[:<T>]\n  \
         --service SPEC     exp | det | bp:<ALPHA>:<MAX>\n  \
         --capacities SPEC  e.g. 50x1.6,50x0.4 (enables heterogeneous cluster)\n  \
         --stealing MIN     idle servers steal from queues of length >= MIN\n  \
         --burst LEN:GAP    bursty update-on-access clients\n  \
         --faults SPEC      none | crash:<MTBF>:<MTTR>[:redispatch] | drop:<P> |\n                     \
         delay:<MEAN> (combine with commas, e.g. crash:500:20,drop:0.3)\n  \
         --staleness-cutoff AGE  hide board entries older than AGE from the policy\n  \
         --queue-cap N      bound each server queue at N jobs; excess arrivals are rejected\n  \
         --deadline T       jobs still waiting after T renege (abandon the queue)\n  \
         --retry MAX:BASE:CAP  rejected/reneged jobs retry up to MAX attempts after\n                     \
         decorrelated-jitter backoff in [BASE, CAP]\n  \
         --guard THR:COOLDOWN  circuit breaker: fall back to random routing for\n                     \
         COOLDOWN time when dispatch concentration exceeds THR (>1)\n  \
         --partition MTBF:DUR:FRAC[:correlated]  a FRAC subset of servers goes\n                     \
         invisible to the board for DUR (contiguous block when\n                     \
         correlated), healing and re-striking with mean MTBF\n  \
         --churn MTBF:DOWNTIME  servers leave with mean MTBF (queues handed off)\n                     \
         and rejoin cold after DOWNTIME\n  \
         --corrupt FRAC     garble FRAC of load reports in flight (zeroed, stuck,\n                     \
         or scaled 8x)\n  \
         --hedge H          dispatch each job to H servers, first completion wins,\n                     \
         losers cancelled (needs a plain FIFO config)\n  \
         --quarantine WINDOW:BACKOFF  eject servers whose reports are older than\n                     \
         WINDOW, probe for readmission after BACKOFF (doubling)\n  \
         --scheduler KIND   event-queue backend: heap (default) or calendar;\n                     \
         trajectories are bit-identical, calendar is faster at scale\n  \
         --engine MODE      state representation: per-server (default) or\n                     \
         population (count-based mean-field fast path; exact in\n                     \
         distribution for random/k-subset/greedy/basic-li over\n                     \
         fresh or periodic info, scales to millions of servers)\n  \
         --population-sampler S  routing sampler for --engine population:\n                     \
         alias (default, O(1) draws) or scan (linear reference)\n  \
         --watchdog SECS    per-trial wall-clock budget; a trial whose every\n                     \
         attempt (one retry after jittered backoff) exceeds it is\n                     \
         reported as a failed trial instead of hanging the run\n  \
         --sketch-cap N     exact-mode capacity of the tail-quantile sketch before\n                     \
         it compacts onto the log grid (4096)\n  \
         --tail-p P         report one extra response-time percentile under\n                     \
         --detail; P strictly in (0, 1), e.g. 0.95\n  \
         --detail           print tail latencies, fairness, occupancy\n\n\
         EXAMPLES:\n  \
         staleload compare --info periodic:10\n  \
         staleload run --policy basic-li --info continuous:exp:5:actual --detail\n  \
         staleload run --policy hetero-li --capacities 50x1.6,50x0.4 --lambda 0.7\n  \
         staleload run --faults crash:500:20,drop:0.5 --staleness-cutoff 25\n  \
         staleload run --queue-cap 10 --deadline 20 --retry 5:1:30 --guard 2:100 --detail\n  \
         staleload run --partition 50:25:0.25 --quarantine 15:10 --detail\n  \
         staleload run --hedge 2 --churn 150:30 --corrupt 0.1 --detail"
    );
}

/// Runs the experiment: threaded and unguarded by default, or trial by
/// trial under a per-attempt wall-clock watchdog when `--watchdog` is
/// set. A trial whose every attempt exceeds the budget is reported as a
/// failed trial (surfaced by `report_anomalies`), never a hang; the
/// aggregates then cover the surviving trials only. Trial results are
/// seed-derived, so the guarded and unguarded paths produce identical
/// statistics whenever no trial times out.
fn run_experiment(exp: Experiment, watchdog: Option<f64>) -> Result<ExperimentResult, String> {
    let Some(secs) = watchdog else {
        return exp.try_run().map_err(|e| e.to_string());
    };
    let spec = WatchdogSpec::with_budget(Duration::from_secs_f64(secs));
    let exp = Arc::new(exp);
    let outcomes: Vec<TrialOutcome> = (0..exp.trials)
        .map(|trial| {
            let seed = trial_seed(exp.config.seed, trial);
            let body = Arc::clone(&exp);
            // Perturb the jitter seed so the retry backoff stream never
            // correlates with the trial's own random stream.
            let guarded = run_guarded(&spec, seed ^ 0x57A7_C4D0_6B0D_6E55, move || {
                body.run_trial(trial)
            });
            guarded.outcome.unwrap_or_else(|| {
                TrialOutcome::Failed(TrialFailure {
                    trial,
                    seed,
                    error: format!(
                        "watchdog: exceeded the {:?} per-attempt budget ({} attempts, {} timeouts)",
                        spec.budget, guarded.attempts, guarded.timeouts
                    ),
                })
            })
        })
        .collect();
    exp.aggregate(outcomes).map_err(|e| e.to_string())
}

fn cmd_run(args: &RunArgs) -> Result<(), String> {
    let exp = Experiment::new(
        args.config.clone(),
        args.arrivals,
        args.info,
        args.policy.clone(),
        args.trials,
    );
    println!(
        "{} | {} | n={} lambda={} arrivals={} trials={}",
        args.policy.label(),
        args.info.label(),
        args.config.servers,
        args.config.lambda,
        args.config.arrivals,
        args.trials
    );
    let result = run_experiment(exp, args.watchdog)?;
    let s = &result.summary;
    println!(
        "mean response : {:.4} ±{:.4} (90% CI over {} trials)",
        s.mean, s.ci90, s.trials
    );
    println!(
        "median        : {:.4}  [q1 {:.4}, q3 {:.4}]",
        s.median, s.q1, s.q3
    );
    println!("range         : [{:.4}, {:.4}]", s.min, s.max);
    let t = &result.tail;
    println!(
        "p50/p99/p999  : {:.4} / {:.4} / {:.4} (max {:.4} over {} measured jobs, all trials)",
        t.p50, t.p99, t.p999, t.max, t.count
    );
    report_anomalies(&result);
    if args.detail {
        // One representative run for tails/fairness (trial 0's seed).
        let mut cfg = args.config.clone();
        cfg.seed = staleload_core::trial_seed(args.config.seed, 0);
        let r = staleload_core::run_simulation(&cfg, &args.arrivals, &args.info, &args.policy)
            .map_err(|e| e.to_string())?;
        let d = &r.detail;
        println!("--- detail (trial 0) ---");
        println!(
            "p50/p95/p99/p999: {:.3} / {:.3} / {:.3} / {:.3} (max {:.3})",
            d.response_quantile(0.50),
            d.response_quantile(0.95),
            d.response_quantile(0.99),
            d.response_quantile(0.999),
            r.response.max()
        );
        if let Some(p) = args.tail_p {
            println!("p{} (requested): {:.3}", p * 100.0, d.response_quantile(p));
        }
        println!(
            "mean in system: {:.2} (peak {:.0})",
            d.mean_jobs_in_system(r.end_time),
            d.peak_jobs_in_system()
        );
        let utils = d.utilizations(r.end_time);
        let mean_u = utils.iter().sum::<f64>() / utils.len() as f64;
        println!("utilization   : mean {:.3}", mean_u);
        println!(
            "fairness      : {:.4} (Jain index of per-server throughput)",
            d.throughput_fairness()
        );
        if r.faults != staleload_core::FaultStats::default() {
            let f = &r.faults;
            println!(
                "faults        : {} crashes, {} recoveries, {:.1} downtime, {} redispatched, {} redirected",
                f.crashes, f.recoveries, f.downtime, f.redispatched, f.redirected
            );
        }
        if !r.overload.is_zero() {
            let o = &r.overload;
            println!(
                "overload      : {} rejected, {} reneged, {} retries, {} abandoned",
                o.rejected, o.reneged, o.retries, o.abandoned
            );
            println!(
                "goodput       : {:.4} of {:.4} offered ({:.1}% lost), amplification {:.3}",
                r.goodput(),
                r.offered_throughput(),
                100.0 * o.abandoned as f64 / r.generated as f64,
                o.retry_amplification(r.generated)
            );
            println!("recovery time : {:.1}", d.time_to_recovery());
        }
        if !r.resilience.is_zero() {
            let res = &r.resilience;
            println!(
                "resilience    : {} hedges ({} won, {} cancelled), {} ejections, \
                 {} readmissions, {} corrupted, {:.1} partition-seconds",
                res.hedges_issued,
                res.hedges_won,
                res.hedges_cancelled,
                res.quarantine_ejections,
                res.quarantine_readmissions,
                res.corrupted_reports,
                res.partition_seconds
            );
            if res.hedges_issued > 0 {
                println!("hedge win rate: {:.3}", res.hedge_win_rate());
            }
        }
    }
    Ok(())
}

/// Prints the loud warnings: failed trials and per-run diagnostics (e.g.
/// history misses, which mean the staleness numbers cannot be trusted).
fn report_anomalies(result: &staleload_core::ExperimentResult) {
    for failure in &result.failures {
        eprintln!("WARNING       : {failure}");
    }
    if !result.failures.is_empty() {
        eprintln!(
            "WARNING       : {} of {} trials failed; aggregates cover the survivors only",
            result.failures.len(),
            result.failures.len() + result.trial_means.len()
        );
    }
    for diagnostic in &result.diagnostics {
        eprintln!("WARNING       : {diagnostic}");
    }
}

fn cmd_compare(args: &RunArgs) -> Result<(), String> {
    let lambda = args.config.lambda;
    let panel: Vec<PolicySpec> = vec![
        PolicySpec::Random,
        PolicySpec::KSubset { k: 2 },
        PolicySpec::KSubset { k: 3 },
        PolicySpec::Greedy,
        PolicySpec::BasicLi { lambda },
        PolicySpec::AggressiveLi { lambda },
    ];
    println!(
        "{} | n={} lambda={} arrivals={} trials={}",
        args.info.label(),
        args.config.servers,
        args.config.lambda,
        args.config.arrivals,
        args.trials
    );
    let mut table = Table::new(vec![
        "policy".into(),
        "mean response".into(),
        "p99".into(),
        "vs random".into(),
    ]);
    let mut baseline = None;
    for policy in panel {
        let label = policy.label();
        let r = run_experiment(
            Experiment::new(
                args.config.clone(),
                args.arrivals,
                args.info,
                policy,
                args.trials,
            ),
            args.watchdog,
        )?;
        report_anomalies(&r);
        let mean = r.summary.mean;
        let base = *baseline.get_or_insert(mean);
        table.push_row(vec![
            label,
            format!("{:.3} ±{:.3}", mean, r.summary.ci90),
            format!("{:.3}", r.tail.p99),
            format!("{:+.1}%", 100.0 * (mean - base) / base),
        ]);
    }
    print!("{}", table.render());
    Ok(())
}

fn cmd_rank(rest: &[String]) -> Result<(), String> {
    let mut n = 100usize;
    let mut ks: Vec<usize> = vec![1, 2, 3, 10];
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--n" => {
                n = it
                    .next()
                    .ok_or("--n needs a value")?
                    .parse()
                    .map_err(|e| format!("--n: {e}"))?;
            }
            "--k" => {
                ks = it
                    .next()
                    .ok_or("--k needs a value")?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|_| format!("bad k '{s}'")))
                    .collect::<Result<_, _>>()?;
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    for &k in &ks {
        if k == 0 || k > n {
            return Err(format!("k = {k} must be in 1..={n}"));
        }
    }
    let mut headers = vec!["rank".to_string()];
    headers.extend(ks.iter().map(|k| format!("k={k}")));
    let mut table = Table::new(headers);
    let dists: Vec<Vec<f64>> = ks.iter().map(|&k| rank_distribution(n, k)).collect();
    for rank in 0..n.min(20) {
        let mut row = vec![rank.to_string()];
        row.extend(dists.iter().map(|d| format!("{:.5}", d[rank])));
        table.push_row(row);
    }
    println!("k-subset request fraction by load rank (paper Eq. 1), n = {n}:");
    print!("{}", table.render());
    Ok(())
}

fn cmd_theory(rest: &[String]) -> Result<(), String> {
    let mut lambda = 0.9f64;
    let mut servers = 100usize;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--lambda" => {
                lambda = it
                    .next()
                    .ok_or("--lambda needs a value")?
                    .parse()
                    .map_err(|e| format!("--lambda: {e}"))?;
            }
            "--servers" => {
                servers = it
                    .next()
                    .ok_or("--servers needs a value")?
                    .parse()
                    .map_err(|e| format!("--servers: {e}"))?;
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if !(lambda > 0.0 && lambda < 1.0) {
        return Err(format!("lambda must be in (0,1), got {lambda}"));
    }
    println!("closed-form anchors at per-server load {lambda}, n = {servers}:");
    println!(
        "  M/M/1 (random split) mean response : {:.4}",
        staleload_analytic::mm1_response(lambda)
    );
    println!(
        "  M/D/1 (deterministic service)      : {:.4}",
        staleload_analytic::md1_response(lambda)
    );
    println!(
        "  M/M/n central queue (lower bound)  : {:.4}",
        staleload_analytic::mmn_response(servers, lambda)
    );
    println!(
        "  Erlang-C waiting probability       : {:.6}",
        staleload_analytic::erlang_c(servers, lambda)
    );
    Ok(())
}
