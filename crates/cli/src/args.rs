//! Hand-rolled argument parsing (the project's dependency policy allows no
//! CLI crate, and the grammar is small).

use staleload_core::{
    clients_for_mean_age, ArrivalSpec, ChurnSpec, CorruptSpec, EngineMode, FaultSpec,
    PartitionSpec, PopulationSampler, RetrySpec, SimConfig,
};
use staleload_info::{AgeKnowledge, DelaySpec, InfoSpec};
use staleload_policies::PolicySpec;
use staleload_sim::{Dist, SchedulerKind};
use staleload_workloads::BurstConfig;

/// A fully parsed `staleload run`/`compare` invocation.
#[derive(Debug, Clone)]
pub struct RunArgs {
    /// System configuration.
    pub config: SimConfig,
    /// Arrival structure (clients derived for update-on-access).
    pub arrivals: ArrivalSpec,
    /// Information model.
    pub info: InfoSpec,
    /// Policy (ignored by `compare`, which runs a panel).
    pub policy: PolicySpec,
    /// Trials.
    pub trials: usize,
    /// Print tail/fairness detail.
    pub detail: bool,
    /// Per-trial wall-clock budget in seconds (`--watchdog`). `None`
    /// runs trials unguarded, exactly as before the flag existed.
    pub watchdog: Option<f64>,
    /// Extra percentile to report under `--detail` (`--tail-p`),
    /// strictly inside (0, 1). `None` prints the standard set only.
    pub tail_p: Option<f64>,
}

/// Parses a policy spec string.
///
/// Grammar: `random | greedy | k:<K> | threshold:<T> | basic-li |
/// aggressive-li | hybrid-li | li:<K> | decay:<TAU> | adaptive-li |
/// hetero-li` (the last requires `--capacities`).
///
/// # Errors
///
/// Returns a message describing the malformed spec.
pub fn parse_policy(
    s: &str,
    lambda: f64,
    capacities: Option<&[f64]>,
) -> Result<PolicySpec, String> {
    let (head, tail) = split_spec(s);
    match head {
        "random" => Ok(PolicySpec::Random),
        "greedy" => Ok(PolicySpec::Greedy),
        "k" => Ok(PolicySpec::KSubset {
            k: parse_field(tail, "k", "subset size")?,
        }),
        "threshold" => Ok(PolicySpec::Threshold {
            threshold: parse_field(tail, "threshold", "threshold")?,
        }),
        "basic-li" => Ok(PolicySpec::BasicLi { lambda }),
        "aggressive-li" => Ok(PolicySpec::AggressiveLi { lambda }),
        "hybrid-li" => Ok(PolicySpec::HybridLi { lambda }),
        "li" => Ok(PolicySpec::LiSubset {
            k: parse_field(tail, "li", "subset size")?,
            lambda,
        }),
        "decay" => Ok(PolicySpec::WeightedDecay {
            tau: parse_field(tail, "decay", "tau")?,
        }),
        "adaptive-li" => Ok(PolicySpec::AdaptiveLi {
            alpha: 0.01,
            warmup: 1000,
        }),
        "probe" => {
            let rest = tail.ok_or("probe needs <PROBES>:<THRESHOLD> (e.g. probe:3:1)")?;
            let (p, t) = rest
                .split_once(':')
                .ok_or("probe needs <PROBES>:<THRESHOLD>")?;
            Ok(PolicySpec::ProbeThreshold {
                probes: p.parse().map_err(|_| format!("bad probe count '{p}'"))?,
                threshold: t.parse().map_err(|_| format!("bad threshold '{t}'"))?,
            })
        }
        "hetero-li" => match capacities {
            Some(caps) => Ok(PolicySpec::HeteroLi {
                lambda,
                capacities: caps.to_vec(),
            }),
            None => Err("hetero-li requires --capacities".to_string()),
        },
        other => Err(format!(
            "unknown policy '{other}' (expected random, greedy, k:<K>, threshold:<T>, \
             probe:<L>:<T>, basic-li, aggressive-li, hybrid-li, li:<K>, decay:<TAU>, \
             adaptive-li, hetero-li, sita)"
        )),
    }
}

/// Parses an information-model spec string.
///
/// Grammar: `fresh | periodic:<T> | continuous:<const|unarrow|uwide|exp>:<T>[:actual]
/// | uoa:<T> | ewma:<ALPHA>[:<T>] | ma:<W1>,<W2>,<W3>[:<T>]` (estimator
/// periods default to 1.0).
///
/// # Errors
///
/// Returns a message describing the malformed spec.
pub fn parse_info(s: &str) -> Result<InfoSpec, String> {
    let parts: Vec<&str> = s.split(':').collect();
    match parts[0] {
        "fresh" => Ok(InfoSpec::Fresh),
        "periodic" => {
            let t: f64 = parse_field(parts.get(1).copied(), "periodic", "period")?;
            Ok(InfoSpec::Periodic { period: t })
        }
        "continuous" => {
            let dist = *parts
                .get(1)
                .ok_or("continuous needs a delay distribution")?;
            let t: f64 = parse_field(parts.get(2).copied(), "continuous", "mean delay")?;
            let delay = match dist {
                "const" => DelaySpec::Constant { mean: t },
                "unarrow" => DelaySpec::UniformNarrow { mean: t },
                "uwide" => DelaySpec::UniformWide { mean: t },
                "exp" => DelaySpec::Exponential { mean: t },
                other => return Err(format!("unknown delay distribution '{other}'")),
            };
            let knowledge = if parts.get(3) == Some(&"actual") {
                AgeKnowledge::Actual
            } else {
                AgeKnowledge::MeanOnly
            };
            Ok(InfoSpec::Continuous { delay, knowledge })
        }
        "individual" => {
            let t: f64 = parse_field(parts.get(1).copied(), "individual", "period")?;
            Ok(InfoSpec::Individual { period: t })
        }
        // The mean age T is consumed by the caller (it sets the client
        // count), so `uoa:<T>` parses to plain UpdateOnAccess here.
        "uoa" => Ok(InfoSpec::UpdateOnAccess),
        "ewma" => {
            let alpha: f64 = parse_field(parts.get(1).copied(), "ewma", "smoothing weight")?;
            let period: f64 = match parts.get(2) {
                Some(p) => p
                    .parse()
                    .map_err(|_| format!("bad period '{p}' for ewma"))?,
                None => 1.0,
            };
            Ok(InfoSpec::Ewma { period, alpha })
        }
        "ma" => {
            let list = *parts
                .get(1)
                .ok_or("ma needs three horizons <W1>,<W2>,<W3> (e.g. ma:2,10,30)")?;
            let windows = list
                .split(',')
                .map(|w| {
                    let w = w.trim();
                    w.parse::<f64>()
                        .map_err(|_| format!("bad horizon '{w}' for ma"))
                })
                .collect::<Result<Vec<f64>, String>>()?;
            let windows: [f64; 3] = windows.try_into().map_err(|got: Vec<f64>| {
                format!(
                    "ma needs exactly three horizons <W1>,<W2>,<W3>, got {}",
                    got.len()
                )
            })?;
            let period: f64 = match parts.get(2) {
                Some(p) => p.parse().map_err(|_| format!("bad period '{p}' for ma"))?,
                None => 1.0,
            };
            Ok(InfoSpec::MultiHorizon { period, windows })
        }
        other => Err(format!(
            "unknown info model '{other}' (expected fresh, periodic:<T>, individual:<T>, \
             continuous:<dist>:<T>[:actual], uoa:<T>, ewma:<ALPHA>[:<T>], \
             ma:<W1>,<W2>,<W3>[:<T>])"
        )),
    }
}

/// Extracts the mean-age parameter of a `uoa:<T>` spec, if present.
pub fn parse_uoa_age(s: &str) -> Result<Option<f64>, String> {
    let parts: Vec<&str> = s.split(':').collect();
    if parts[0] != "uoa" {
        return Ok(None);
    }
    let t: f64 = parse_field(parts.get(1).copied(), "uoa", "mean inter-request time")?;
    Ok(Some(t))
}

/// Parses a job-size spec: `exp | det | bp:<ALPHA>:<MAX>` (mean forced to
/// 1, as in the paper).
///
/// # Errors
///
/// Returns a message describing the malformed spec.
pub fn parse_service(s: &str) -> Result<Dist, String> {
    let parts: Vec<&str> = s.split(':').collect();
    match parts[0] {
        "exp" => Ok(Dist::exponential(1.0)),
        "det" => Ok(Dist::constant(1.0)),
        "bp" => {
            let alpha: f64 = parse_field(parts.get(1).copied(), "bp", "alpha")?;
            let max: f64 = parse_field(parts.get(2).copied(), "bp", "max size")?;
            Dist::bounded_pareto_with_mean(alpha, max, 1.0).map_err(|e| e.to_string())
        }
        other => Err(format!(
            "unknown service distribution '{other}' (expected exp, det, bp:<A>:<M>)"
        )),
    }
}

/// Parses a capacity spec like `50x1.6,50x0.4` or `1.0,2.0,0.5`.
///
/// # Errors
///
/// Returns a message describing the malformed spec.
pub fn parse_capacities(s: &str) -> Result<Vec<f64>, String> {
    let mut out = Vec::new();
    for group in s.split(',') {
        if let Some((count, rate)) = group.split_once('x') {
            let count: usize = count
                .trim()
                .parse()
                .map_err(|_| format!("bad capacity count '{count}'"))?;
            let rate: f64 = rate
                .trim()
                .parse()
                .map_err(|_| format!("bad capacity rate '{rate}'"))?;
            out.extend(std::iter::repeat_n(rate, count));
        } else {
            let rate: f64 = group
                .trim()
                .parse()
                .map_err(|_| format!("bad capacity '{group}'"))?;
            out.push(rate);
        }
    }
    if out.is_empty() {
        return Err("capacity spec is empty".to_string());
    }
    Ok(out)
}

fn split_spec(s: &str) -> (&str, Option<&str>) {
    match s.split_once(':') {
        Some((h, t)) => (h, Some(t)),
        None => (s, None),
    }
}

fn parse_field<T: std::str::FromStr>(
    value: Option<&str>,
    what: &str,
    field: &str,
) -> Result<T, String> {
    let v = value.ok_or_else(|| format!("{what} needs a {field} (e.g. {what}:10)"))?;
    v.parse()
        .map_err(|_| format!("bad {field} '{v}' for {what}"))
}

/// Parses the flags of `staleload run`/`compare`.
///
/// # Errors
///
/// Returns a usage message on any malformed flag.
pub fn parse_run(args: &[String]) -> Result<RunArgs, String> {
    let mut servers = 100usize;
    let mut lambda = 0.9f64;
    let mut arrivals = 200_000u64;
    let mut trials = 5usize;
    let mut seed = 1u64;
    let mut policy_spec = "basic-li".to_string();
    let mut info_spec = "periodic:10".to_string();
    let mut service_spec = "exp".to_string();
    let mut capacities: Option<Vec<f64>> = None;
    let mut stealing: Option<u32> = None;
    let mut burst: Option<BurstConfig> = None;
    let mut faults = FaultSpec::none();
    let mut partition: Option<PartitionSpec> = None;
    let mut churn: Option<ChurnSpec> = None;
    let mut corrupt: Option<CorruptSpec> = None;
    let mut hedge: Option<u32> = None;
    let mut quarantine: Option<(f64, f64)> = None;
    let mut staleness_cutoff: Option<f64> = None;
    let mut queue_cap: Option<u32> = None;
    let mut deadline: Option<f64> = None;
    let mut retry: Option<RetrySpec> = None;
    let mut guard: Option<(f64, f64)> = None;
    let mut scheduler = SchedulerKind::Heap;
    let mut engine = EngineMode::PerServer;
    let mut population_sampler = PopulationSampler::Alias;
    let mut detail = false;
    let mut watchdog: Option<f64> = None;
    let mut sketch_cap: Option<usize> = None;
    let mut tail_p: Option<f64> = None;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut take = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--servers" => {
                servers = take("--servers")?
                    .parse()
                    .map_err(|e| format!("--servers: {e}"))?
            }
            "--lambda" => {
                lambda = take("--lambda")?
                    .parse()
                    .map_err(|e| format!("--lambda: {e}"))?
            }
            "--arrivals" => {
                arrivals = take("--arrivals")?
                    .parse()
                    .map_err(|e| format!("--arrivals: {e}"))?
            }
            "--trials" => {
                trials = take("--trials")?
                    .parse()
                    .map_err(|e| format!("--trials: {e}"))?
            }
            "--seed" => {
                seed = take("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--policy" => policy_spec = take("--policy")?.clone(),
            "--info" => info_spec = take("--info")?.clone(),
            "--service" => service_spec = take("--service")?.clone(),
            "--capacities" => capacities = Some(parse_capacities(take("--capacities")?)?),
            "--stealing" => {
                stealing = Some(
                    take("--stealing")?
                        .parse()
                        .map_err(|e| format!("--stealing: {e}"))?,
                )
            }
            "--burst" => {
                let v = take("--burst")?;
                let (len, gap) = v
                    .split_once(':')
                    .ok_or("--burst expects <LEN>:<INTRA_GAP> (e.g. 10:1.0)")?;
                burst = Some(BurstConfig {
                    burst_len: len
                        .parse()
                        .map_err(|_| format!("bad burst length '{len}'"))?,
                    intra_gap_mean: gap.parse().map_err(|_| format!("bad intra gap '{gap}'"))?,
                });
            }
            "--faults" => {
                faults = take("--faults")?
                    .parse::<FaultSpec>()
                    .map_err(|e| e.to_string())?;
            }
            "--partition" => {
                let v = take("--partition")?;
                let parts: Vec<&str> = v.split(':').collect();
                if !(parts.len() == 3 || (parts.len() == 4 && parts[3] == "correlated")) {
                    return Err(
                        "--partition expects <MTBF>:<DURATION>:<FRACTION>[:correlated] \
                         (e.g. 50:25:0.25)"
                            .to_string(),
                    );
                }
                partition = Some(PartitionSpec {
                    mtbf: parts[0]
                        .parse()
                        .map_err(|_| format!("bad partition MTBF '{}'", parts[0]))?,
                    duration: parts[1]
                        .parse()
                        .map_err(|_| format!("bad partition duration '{}'", parts[1]))?,
                    fraction: parts[2]
                        .parse()
                        .map_err(|_| format!("bad partition fraction '{}'", parts[2]))?,
                    correlated: parts.len() == 4,
                });
            }
            "--churn" => {
                let v = take("--churn")?;
                let (m, d) = v
                    .split_once(':')
                    .ok_or("--churn expects <MTBF>:<DOWNTIME> (e.g. 150:30)")?;
                churn = Some(ChurnSpec {
                    mtbf: m.parse().map_err(|_| format!("bad churn MTBF '{m}'"))?,
                    downtime: d.parse().map_err(|_| format!("bad churn downtime '{d}'"))?,
                });
            }
            "--corrupt" => {
                corrupt = Some(CorruptSpec {
                    fraction: take("--corrupt")?
                        .parse()
                        .map_err(|e| format!("--corrupt: {e}"))?,
                });
            }
            "--hedge" => {
                hedge = Some(
                    take("--hedge")?
                        .parse()
                        .map_err(|e| format!("--hedge: {e}"))?,
                );
            }
            "--quarantine" => {
                let v = take("--quarantine")?;
                let (w, b) = v
                    .split_once(':')
                    .ok_or("--quarantine expects <WINDOW>:<BACKOFF> (e.g. 15:10)")?;
                quarantine = Some((
                    w.parse()
                        .map_err(|_| format!("bad quarantine window '{w}'"))?,
                    b.parse()
                        .map_err(|_| format!("bad quarantine backoff '{b}'"))?,
                ));
            }
            "--staleness-cutoff" => {
                staleness_cutoff = Some(
                    take("--staleness-cutoff")?
                        .parse()
                        .map_err(|e| format!("--staleness-cutoff: {e}"))?,
                );
            }
            "--queue-cap" => {
                queue_cap = Some(
                    take("--queue-cap")?
                        .parse()
                        .map_err(|e| format!("--queue-cap: {e}"))?,
                );
            }
            "--deadline" => {
                deadline = Some(
                    take("--deadline")?
                        .parse()
                        .map_err(|e| format!("--deadline: {e}"))?,
                );
            }
            "--retry" => {
                retry = Some(
                    take("--retry")?
                        .parse::<RetrySpec>()
                        .map_err(|e| format!("--retry: {e}"))?,
                );
            }
            "--guard" => {
                let v = take("--guard")?;
                let (t, c) = v
                    .split_once(':')
                    .ok_or("--guard expects <THRESHOLD>:<COOLDOWN> (e.g. 2:50)")?;
                guard = Some((
                    t.parse()
                        .map_err(|_| format!("bad guard threshold '{t}'"))?,
                    c.parse().map_err(|_| format!("bad guard cooldown '{c}'"))?,
                ));
            }
            "--scheduler" => {
                scheduler = take("--scheduler")?.parse::<SchedulerKind>()?;
            }
            "--engine" => {
                engine = take("--engine")?.parse::<EngineMode>()?;
            }
            "--population-sampler" => {
                population_sampler = take("--population-sampler")?.parse::<PopulationSampler>()?;
            }
            "--watchdog" => {
                let secs: f64 = take("--watchdog")?
                    .parse()
                    .map_err(|e| format!("--watchdog: {e}"))?;
                if !(secs.is_finite() && secs > 0.0) {
                    return Err(format!(
                        "--watchdog needs a finite budget > 0 seconds, got {secs}"
                    ));
                }
                watchdog = Some(secs);
            }
            "--sketch-cap" => {
                sketch_cap = Some(
                    take("--sketch-cap")?
                        .parse()
                        .map_err(|e| format!("--sketch-cap: {e}"))?,
                );
            }
            "--tail-p" => {
                let p: f64 = take("--tail-p")?
                    .parse()
                    .map_err(|e| format!("--tail-p: {e}"))?;
                // p = 0 and p = 1 are min/max, already reported; outside
                // [0, 1] is not a probability at all.
                if !(p.is_finite() && 0.0 < p && p < 1.0) {
                    return Err(format!(
                        "--tail-p needs a percentile target strictly in (0, 1), got {p}"
                    ));
                }
                tail_p = Some(p);
            }
            "--detail" => detail = true,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }

    // Dedicated fault flags merge into --faults; naming a fault through
    // both channels is ambiguous and rejected.
    if let Some(p) = partition {
        if faults.partition.is_some() {
            return Err("partition faults specified twice (via --faults and --partition)".into());
        }
        faults.partition = Some(p);
    }
    if let Some(c) = churn {
        if faults.churn.is_some() {
            return Err("churn faults specified twice (via --faults and --churn)".into());
        }
        faults.churn = Some(c);
    }
    if let Some(c) = corrupt {
        if faults.corrupt.is_some() {
            return Err("corruption faults specified twice (via --faults and --corrupt)".into());
        }
        faults.corrupt = Some(c);
    }

    let info = parse_info(&info_spec)?;
    info.validate()?;
    let service = parse_service(&service_spec)?;
    // SITA-E derives its size cutoffs from the service distribution and
    // server count, so it is resolved here rather than in `parse_policy`.
    let policy = if policy_spec == "sita" {
        PolicySpec::Sita {
            boundaries: staleload_policies::Sita::equal_load(&service, servers)
                .boundaries()
                .to_vec(),
        }
    } else {
        parse_policy(&policy_spec, lambda, capacities.as_deref())?
    };
    // Gating composes over any base policy; it matters under fault
    // injection, where board entries age independently.
    let policy = match staleness_cutoff {
        Some(cutoff) => PolicySpec::Gated {
            cutoff,
            inner: Box::new(policy),
        },
        None => policy,
    };
    // Quarantine composes above the gate: it ejects servers the same
    // per-server ages the gate merely discounts.
    let policy = match quarantine {
        Some((window, backoff)) => PolicySpec::Quarantined {
            window,
            backoff,
            inner: Box::new(policy),
        },
        None => policy,
    };
    // The circuit breaker watches the dispatch stream the composed policy
    // actually produces.
    let policy = match guard {
        Some((threshold, cooldown)) => PolicySpec::Guarded {
            threshold,
            cooldown,
            inner: Box::new(policy),
        },
        None => policy,
    };
    // Hedging must be outermost: the engine splits it off and drives the
    // replica placement and cancel-on-completion machinery itself.
    let policy = match hedge {
        Some(h) => PolicySpec::Hedged {
            h,
            inner: Box::new(policy),
        },
        None => policy,
    };
    policy.validate()?;

    let arrivals_spec = match parse_uoa_age(&info_spec)? {
        Some(age) => {
            let clients = clients_for_mean_age(lambda, servers, age);
            arrivals = arrivals.max(clients as u64 * 100);
            match burst {
                None => ArrivalSpec::PoissonClients { clients },
                Some(b) => ArrivalSpec::BurstyClients { clients, burst: b },
            }
        }
        None => ArrivalSpec::Poisson,
    };

    let mut builder = SimConfig::builder();
    builder
        .servers(servers)
        .lambda(lambda)
        .arrivals(arrivals)
        .service(service)
        .seed(seed)
        .scheduler(scheduler)
        .engine(engine)
        .population_sampler(population_sampler)
        .faults(faults);
    if let Some(caps) = capacities {
        builder.capacities(caps);
    }
    if let Some(min) = stealing {
        builder.work_stealing(min);
    }
    if let Some(cap) = queue_cap {
        builder.queue_cap(cap);
    }
    if let Some(d) = deadline {
        builder.deadline(d);
    }
    if let Some(r) = retry {
        builder.retry(r);
    }
    if let Some(cap) = sketch_cap {
        builder.sketch_cap(cap);
    }
    let config = builder.try_build().map_err(|e| e.to_string())?;

    Ok(RunArgs {
        config,
        arrivals: arrivals_spec,
        info,
        policy,
        trials,
        detail,
        watchdog,
        tail_p,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn default_run_parses() {
        let args = parse_run(&[]).unwrap();
        assert_eq!(args.config.servers, 100);
        assert_eq!(args.policy, PolicySpec::BasicLi { lambda: 0.9 });
        assert_eq!(args.info, InfoSpec::Periodic { period: 10.0 });
        assert_eq!(args.arrivals, ArrivalSpec::Poisson);
    }

    #[test]
    fn policy_grammar() {
        assert_eq!(
            parse_policy("random", 0.9, None).unwrap(),
            PolicySpec::Random
        );
        assert_eq!(
            parse_policy("k:3", 0.9, None).unwrap(),
            PolicySpec::KSubset { k: 3 }
        );
        assert_eq!(
            parse_policy("threshold:8", 0.9, None).unwrap(),
            PolicySpec::Threshold { threshold: 8 }
        );
        assert_eq!(
            parse_policy("li:4", 0.5, None).unwrap(),
            PolicySpec::LiSubset { k: 4, lambda: 0.5 }
        );
        assert!(parse_policy("k", 0.9, None).is_err());
        assert!(parse_policy("warp-drive", 0.9, None).is_err());
        assert!(parse_policy("hetero-li", 0.9, None).is_err());
        assert!(parse_policy("hetero-li", 0.9, Some(&[1.0, 2.0])).is_ok());
    }

    #[test]
    fn info_grammar() {
        assert_eq!(parse_info("fresh").unwrap(), InfoSpec::Fresh);
        assert_eq!(
            parse_info("periodic:5").unwrap(),
            InfoSpec::Periodic { period: 5.0 }
        );
        assert_eq!(
            parse_info("continuous:exp:3:actual").unwrap(),
            InfoSpec::Continuous {
                delay: DelaySpec::Exponential { mean: 3.0 },
                knowledge: AgeKnowledge::Actual
            }
        );
        assert_eq!(
            parse_info("continuous:const:2").unwrap(),
            InfoSpec::Continuous {
                delay: DelaySpec::Constant { mean: 2.0 },
                knowledge: AgeKnowledge::MeanOnly
            }
        );
        assert!(parse_info("periodic").is_err());
        assert!(parse_info("continuous:wat:2").is_err());
        assert!(parse_info("psychic").is_err());
    }

    #[test]
    fn estimator_info_grammar() {
        assert_eq!(
            parse_info("ewma:0.3").unwrap(),
            InfoSpec::Ewma {
                period: 1.0,
                alpha: 0.3
            }
        );
        assert_eq!(
            parse_info("ewma:0.5:10").unwrap(),
            InfoSpec::Ewma {
                period: 10.0,
                alpha: 0.5
            }
        );
        assert_eq!(
            parse_info("ma:2,10,30").unwrap(),
            InfoSpec::MultiHorizon {
                period: 1.0,
                windows: [2.0, 10.0, 30.0]
            }
        );
        assert_eq!(
            parse_info("ma:2,10,30:5").unwrap(),
            InfoSpec::MultiHorizon {
                period: 5.0,
                windows: [2.0, 10.0, 30.0]
            }
        );
        // Malformed shapes fail at the parser…
        assert!(parse_info("ewma").is_err());
        assert!(parse_info("ewma:lots").is_err());
        assert!(parse_info("ewma:0.5:soon").is_err());
        assert!(parse_info("ma").is_err());
        assert!(parse_info("ma:2,10").is_err());
        assert!(parse_info("ma:2,10,30,90").is_err());
        assert!(parse_info("ma:2,x,30").is_err());
    }

    #[test]
    fn degenerate_estimator_knobs_are_config_errors() {
        // …and out-of-range values fail InfoSpec::validate in parse_run.
        for alpha in ["0", "-0.5", "1.5", "NaN"] {
            let err = parse_run(&strings(&["--info", &format!("ewma:{alpha}")])).unwrap_err();
            assert!(err.contains("(0, 1]"), "{err}");
        }
        let err = parse_run(&strings(&["--info", "ma:10,2,30"])).unwrap_err();
        assert!(err.contains("strictly increasing"), "{err}");
        assert!(parse_run(&strings(&["--info", "ma:0,2,30"])).is_err());
        assert!(parse_run(&strings(&["--info", "ewma:0.5:0"])).is_err());
        assert!(parse_run(&strings(&["--info", "ma:2,10,30:-1"])).is_err());
    }

    #[test]
    fn sketch_cap_flag_parses_and_validates() {
        assert_eq!(
            parse_run(&[]).unwrap().config.sketch_cap,
            staleload_stats::TailSketch::DEFAULT_CAP
        );
        let args = parse_run(&strings(&["--sketch-cap", "128"])).unwrap();
        assert_eq!(args.config.sketch_cap, 128);
        let err = parse_run(&strings(&["--sketch-cap", "0"])).unwrap_err();
        assert!(err.contains("sketch capacity"), "{err}");
        assert!(parse_run(&strings(&["--sketch-cap", "many"])).is_err());
        assert!(parse_run(&strings(&["--sketch-cap"])).is_err());
    }

    #[test]
    fn tail_p_flag_validates() {
        assert_eq!(parse_run(&[]).unwrap().tail_p, None);
        let args = parse_run(&strings(&["--tail-p", "0.95"])).unwrap();
        assert_eq!(args.tail_p, Some(0.95));
        // 0 and 1 are min/max, not interior percentiles; outside [0, 1]
        // and non-finite are not probabilities. All typed errors.
        for bad in ["0", "1", "1.5", "-0.1", "NaN", "inf"] {
            let err = parse_run(&strings(&["--tail-p", bad])).unwrap_err();
            assert!(err.contains("(0, 1)"), "--tail-p {bad}: {err}");
        }
        assert!(parse_run(&strings(&["--tail-p", "soon"])).is_err());
        assert!(parse_run(&strings(&["--tail-p"])).is_err());
    }

    #[test]
    fn uoa_spawns_clients() {
        let args = parse_run(&strings(&["--info", "uoa:8", "--lambda", "0.9"])).unwrap();
        match args.arrivals {
            ArrivalSpec::PoissonClients { clients } => assert_eq!(clients, 720),
            other => panic!("expected clients, got {other:?}"),
        }
        assert!(args.config.arrivals >= 72_000);
    }

    #[test]
    fn uoa_with_burst() {
        let args = parse_run(&strings(&["--info", "uoa:8", "--burst", "10:1.0"])).unwrap();
        match args.arrivals {
            ArrivalSpec::BurstyClients { burst, .. } => {
                assert_eq!(burst.burst_len, 10);
                assert_eq!(burst.intra_gap_mean, 1.0);
            }
            other => panic!("expected bursty clients, got {other:?}"),
        }
    }

    #[test]
    fn capacity_grammar() {
        assert_eq!(parse_capacities("1.0,2.0").unwrap(), vec![1.0, 2.0]);
        assert_eq!(
            parse_capacities("2x1.5,1x0.5").unwrap(),
            vec![1.5, 1.5, 0.5]
        );
        assert!(parse_capacities("").is_err());
        assert!(parse_capacities("axb").is_err());
    }

    #[test]
    fn service_grammar() {
        assert_eq!(parse_service("exp").unwrap(), Dist::exponential(1.0));
        assert_eq!(parse_service("det").unwrap(), Dist::constant(1.0));
        let bp = parse_service("bp:1.1:100").unwrap();
        assert!((bp.mean() - 1.0).abs() < 1e-6);
        assert!(parse_service("bp:1.1").is_err());
    }

    #[test]
    fn hetero_capacities_resize_servers() {
        let args = parse_run(&strings(&[
            "--capacities",
            "4x1.5,4x0.5",
            "--policy",
            "hetero-li",
            "--lambda",
            "0.7",
        ]))
        .unwrap();
        assert_eq!(args.config.servers, 8);
        assert!(matches!(args.policy, PolicySpec::HeteroLi { .. }));
    }

    #[test]
    fn probe_and_sita_grammar() {
        assert_eq!(
            parse_policy("probe:3:1", 0.9, None).unwrap(),
            PolicySpec::ProbeThreshold {
                probes: 3,
                threshold: 1
            }
        );
        assert!(parse_policy("probe:3", 0.9, None).is_err());
        let args = parse_run(&strings(&[
            "--policy",
            "sita",
            "--service",
            "bp:1.1:100",
            "--servers",
            "10",
        ]))
        .unwrap();
        match args.policy {
            PolicySpec::Sita { boundaries } => assert_eq!(boundaries.len(), 9),
            other => panic!("expected SITA, got {other:?}"),
        }
    }

    #[test]
    fn engine_flag_selects_population_mode() {
        let plain = parse_run(&[]).unwrap();
        assert_eq!(plain.config.engine, EngineMode::PerServer);
        assert_eq!(plain.config.population_sampler, PopulationSampler::Alias);
        let pop = parse_run(&strings(&["--engine", "population"])).unwrap();
        assert_eq!(pop.config.engine, EngineMode::Population);
        let mf = parse_run(&strings(&["--engine", "mean-field"])).unwrap();
        assert_eq!(mf.config.engine, EngineMode::Population);
        let scan = parse_run(&strings(&[
            "--engine",
            "population",
            "--population-sampler",
            "scan",
        ]))
        .unwrap();
        assert_eq!(scan.config.population_sampler, PopulationSampler::Scan);
        assert!(parse_run(&strings(&["--engine", "quantum"])).is_err());
        assert!(parse_run(&strings(&["--population-sampler", "hash"])).is_err());
        // Builder-level compatibility checks surface as parse errors.
        let err = parse_run(&strings(&["--engine", "population", "--service", "det"])).unwrap_err();
        assert!(err.contains("exponential"), "{err}");
        let err = parse_run(&strings(&["--engine", "population", "--queue-cap", "8"])).unwrap_err();
        assert!(err.contains("overload"), "{err}");
    }

    #[test]
    fn scheduler_flag_selects_backend() {
        let plain = parse_run(&[]).unwrap();
        assert_eq!(plain.config.scheduler, SchedulerKind::Heap);
        let cal = parse_run(&strings(&["--scheduler", "calendar"])).unwrap();
        assert_eq!(cal.config.scheduler, SchedulerKind::Calendar);
        let heap = parse_run(&strings(&["--scheduler", "heap"])).unwrap();
        assert_eq!(heap.config.scheduler, SchedulerKind::Heap);
        assert!(parse_run(&strings(&["--scheduler", "wheel"])).is_err());
    }

    #[test]
    fn unknown_flag_is_rejected() {
        assert!(parse_run(&strings(&["--frobnicate", "1"])).is_err());
        assert!(parse_run(&strings(&["--servers"])).is_err());
    }

    #[test]
    fn fault_grammar() {
        let args = parse_run(&strings(&["--faults", "crash:500:20"])).unwrap();
        assert_eq!(args.config.faults, FaultSpec::crash(500.0, 20.0));
        let args = parse_run(&strings(&["--faults", "crash:500:20:redispatch,drop:0.3"])).unwrap();
        let crash = args.config.faults.crash.unwrap();
        assert!(crash.redispatch);
        assert_eq!(args.config.faults.loss.unwrap().drop_prob, 0.3);
        assert!(parse_run(&strings(&["--faults", "crash:0:20"])).is_err());
        assert!(parse_run(&strings(&["--faults", "meteor:1"])).is_err());
    }

    #[test]
    fn overload_flags_parse() {
        let args = parse_run(&strings(&[
            "--queue-cap",
            "8",
            "--deadline",
            "5",
            "--retry",
            "4:0.5:10",
        ]))
        .unwrap();
        assert_eq!(args.config.queue_cap, Some(8));
        assert_eq!(args.config.deadline, Some(5.0));
        let r = args.config.retry.unwrap();
        assert_eq!((r.max_attempts, r.base, r.cap), (4, 0.5, 10.0));

        // Defaults stay off.
        let plain = parse_run(&[]).unwrap();
        assert_eq!(plain.config.queue_cap, None);
        assert_eq!(plain.config.deadline, None);
        assert_eq!(plain.config.retry, None);

        // Malformed or inconsistent specs are rejected with messages.
        assert!(parse_run(&strings(&["--queue-cap", "0"])).is_err());
        assert!(parse_run(&strings(&["--deadline", "-1"])).is_err());
        assert!(parse_run(&strings(&["--retry", "4:0.5"])).is_err());
        assert!(parse_run(&strings(&["--retry", "1:0.5:10", "--queue-cap", "8"])).is_err());
        // Retry without a cap or deadline can never trigger: config error.
        assert!(parse_run(&strings(&["--retry", "4:0.5:10"])).is_err());
    }

    #[test]
    fn watchdog_flag_parses_and_validates() {
        assert_eq!(parse_run(&[]).unwrap().watchdog, None);
        let args = parse_run(&strings(&["--watchdog", "2.5"])).unwrap();
        assert_eq!(args.watchdog, Some(2.5));
        assert!(parse_run(&strings(&["--watchdog", "0"])).is_err());
        assert!(parse_run(&strings(&["--watchdog", "-3"])).is_err());
        assert!(parse_run(&strings(&["--watchdog", "inf"])).is_err());
        assert!(parse_run(&strings(&["--watchdog", "NaN"])).is_err());
        assert!(parse_run(&strings(&["--watchdog"])).is_err());
    }

    #[test]
    fn guard_wraps_policy_outermost() {
        let args = parse_run(&strings(&["--guard", "2:50", "--staleness-cutoff", "25"])).unwrap();
        match args.policy {
            PolicySpec::Guarded {
                threshold,
                cooldown,
                inner,
            } => {
                assert_eq!((threshold, cooldown), (2.0, 50.0));
                assert!(matches!(*inner, PolicySpec::Gated { .. }));
            }
            other => panic!("expected guarded policy, got {other:?}"),
        }
        assert!(parse_run(&strings(&["--guard", "2"])).is_err());
        assert!(parse_run(&strings(&["--guard", "x:50"])).is_err());
        // threshold must exceed 1 (validate() catches it).
        assert!(parse_run(&strings(&["--guard", "0.5:50"])).is_err());
    }

    #[test]
    fn resilience_fault_flags_parse() {
        let args = parse_run(&strings(&[
            "--partition",
            "50:25:0.25:correlated",
            "--churn",
            "150:30",
            "--corrupt",
            "0.2",
            "--info",
            "periodic:10",
        ]))
        .unwrap();
        let p = args.config.faults.partition.unwrap();
        assert_eq!((p.mtbf, p.duration, p.fraction), (50.0, 25.0, 0.25));
        assert!(p.correlated);
        let c = args.config.faults.churn.unwrap();
        assert_eq!((c.mtbf, c.downtime), (150.0, 30.0));
        assert_eq!(args.config.faults.corrupt.unwrap().fraction, 0.2);

        // The uncorrelated form omits the tag.
        let args = parse_run(&strings(&["--partition", "50:25:0.25"])).unwrap();
        assert!(!args.config.faults.partition.unwrap().correlated);

        // Malformed shapes are rejected with messages, not panics.
        assert!(parse_run(&strings(&["--partition", "50:25"])).is_err());
        assert!(parse_run(&strings(&["--partition", "50:25:0.25:banana"])).is_err());
        assert!(parse_run(&strings(&["--churn", "150"])).is_err());
        assert!(parse_run(&strings(&["--corrupt", "lots"])).is_err());
    }

    #[test]
    fn degenerate_resilience_values_are_config_errors() {
        // Zero-length partition interval.
        assert!(parse_run(&strings(&["--partition", "0:5:0.5"])).is_err());
        assert!(parse_run(&strings(&["--partition", "10:0:0.5"])).is_err());
        // Churn whose downtime would empty the cluster.
        assert!(parse_run(&strings(&["--churn", "10:20"])).is_err());
        // Corruption fraction outside [0, 1].
        assert!(parse_run(&strings(&["--corrupt", "1.5"])).is_err());
        // Hedge factor below 1; quarantine with a zero window.
        assert!(parse_run(&strings(&["--hedge", "0"])).is_err());
        assert!(parse_run(&strings(&["--quarantine", "0:5"])).is_err());
        assert!(parse_run(&strings(&["--quarantine", "15"])).is_err());
        // Churn and crash faults cannot be combined.
        assert!(parse_run(&strings(&["--faults", "crash:500:20", "--churn", "150:30"])).is_err());
        // Naming one fault through both channels is ambiguous.
        assert!(parse_run(&strings(&[
            "--faults",
            "partition:50:25:0.25",
            "--partition",
            "60:20:0.5"
        ]))
        .is_err());
    }

    #[test]
    fn hedge_and_quarantine_wrap_the_policy() {
        let args = parse_run(&strings(&[
            "--hedge",
            "2",
            "--quarantine",
            "15:10",
            "--staleness-cutoff",
            "25",
        ]))
        .unwrap();
        match args.policy {
            PolicySpec::Hedged { h, inner } => {
                assert_eq!(h, 2);
                match *inner {
                    PolicySpec::Quarantined {
                        window,
                        backoff,
                        inner,
                    } => {
                        assert_eq!((window, backoff), (15.0, 10.0));
                        assert!(matches!(*inner, PolicySpec::Gated { .. }));
                    }
                    other => panic!("expected quarantined under hedge, got {other:?}"),
                }
            }
            other => panic!("expected hedged outermost, got {other:?}"),
        }
        // The guard slots between quarantine and the hedge.
        let args = parse_run(&strings(&["--hedge", "3", "--guard", "2:50"])).unwrap();
        match args.policy {
            PolicySpec::Hedged { h: 3, inner } => {
                assert!(matches!(*inner, PolicySpec::Guarded { .. }));
            }
            other => panic!("expected hedged(guarded), got {other:?}"),
        }
    }

    #[test]
    fn staleness_cutoff_wraps_policy() {
        let args = parse_run(&strings(&["--staleness-cutoff", "25"])).unwrap();
        match args.policy {
            PolicySpec::Gated { cutoff, inner } => {
                assert_eq!(cutoff, 25.0);
                assert_eq!(*inner, PolicySpec::BasicLi { lambda: 0.9 });
            }
            other => panic!("expected gated policy, got {other:?}"),
        }
        assert!(parse_run(&strings(&["--staleness-cutoff", "-3"])).is_err());
    }
}
