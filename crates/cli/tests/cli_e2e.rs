//! End-to-end tests that spawn the real `staleload` binary.

use std::process::Command;

fn staleload(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_staleload"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_lists_commands() {
    let (ok, stdout, _) = staleload(&["help"]);
    assert!(ok);
    for needle in ["run", "compare", "rank", "theory", "--policy", "basic-li"] {
        assert!(stdout.contains(needle), "help is missing '{needle}'");
    }
}

#[test]
fn theory_prints_anchors() {
    let (ok, stdout, _) = staleload(&["theory", "--lambda", "0.5"]);
    assert!(ok);
    assert!(stdout.contains("M/M/1"));
    assert!(stdout.contains("2.0000"), "M/M/1 at 0.5 is 2.0:\n{stdout}");
}

#[test]
fn rank_prints_eq1_table() {
    let (ok, stdout, _) = staleload(&["rank", "--n", "10", "--k", "1,2"]);
    assert!(ok);
    assert!(stdout.contains("k=1"));
    assert!(stdout.contains("0.10000"), "uniform k=1 row:\n{stdout}");
    assert!(
        stdout.contains("0.20000"),
        "k=2 rank 0 is k/n = 0.2:\n{stdout}"
    );
}

#[test]
fn run_reports_mean_response() {
    let (ok, stdout, stderr) = staleload(&[
        "run",
        "--servers",
        "8",
        "--lambda",
        "0.5",
        "--arrivals",
        "20000",
        "--trials",
        "2",
        "--policy",
        "basic-li",
        "--info",
        "periodic:2",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("mean response"), "{stdout}");
    assert!(stdout.contains("Basic LI"));
}

#[test]
fn run_detail_prints_tails() {
    let (ok, stdout, _) = staleload(&[
        "run",
        "--servers",
        "4",
        "--lambda",
        "0.5",
        "--arrivals",
        "10000",
        "--trials",
        "1",
        "--policy",
        "random",
        "--info",
        "fresh",
        "--detail",
    ]);
    assert!(ok);
    assert!(stdout.contains("p50/p95/p99"), "{stdout}");
    assert!(stdout.contains("fairness"), "{stdout}");
}

#[test]
fn run_overload_controls_print_goodput() {
    let (ok, stdout, stderr) = staleload(&[
        "run",
        "--servers",
        "8",
        "--lambda",
        "0.95",
        "--arrivals",
        "20000",
        "--trials",
        "1",
        "--policy",
        "random",
        "--info",
        "fresh",
        "--queue-cap",
        "2",
        "--deadline",
        "2",
        "--retry",
        "4:0.5:8",
        "--guard",
        "2:50",
        "--detail",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("overload"), "{stdout}");
    assert!(stdout.contains("goodput"), "{stdout}");
    assert!(
        stdout.contains("guarded"),
        "label shows the breaker:\n{stdout}"
    );
}

#[test]
fn bad_overload_flags_fail_with_message() {
    let (ok, _, stderr) = staleload(&["run", "--queue-cap", "0"]);
    assert!(!ok);
    assert!(stderr.contains("queue cap"), "{stderr}");
    let (ok, _, stderr) = staleload(&["run", "--retry", "5:1:30"]);
    assert!(!ok);
    assert!(
        stderr.contains("retry orbit needs a queue cap or a deadline"),
        "{stderr}"
    );
}

#[test]
fn run_resilience_knobs_print_counters() {
    let (ok, stdout, stderr) = staleload(&[
        "run",
        "--servers",
        "8",
        "--lambda",
        "0.5",
        "--arrivals",
        "20000",
        "--trials",
        "1",
        "--policy",
        "basic-li",
        "--info",
        "periodic:5",
        "--partition",
        "40:20:0.25",
        "--corrupt",
        "0.2",
        "--hedge",
        "2",
        "--quarantine",
        "15:10",
        "--detail",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("resilience"), "{stdout}");
    assert!(stdout.contains("partition-seconds"), "{stdout}");
    assert!(stdout.contains("hedge win rate"), "{stdout}");
    assert!(
        stdout.contains("hedged") && stdout.contains("quarantined"),
        "label shows the wrappers:\n{stdout}"
    );
}

#[test]
fn bad_resilience_flags_fail_with_message() {
    // Zero-length partition interval.
    let (ok, _, stderr) = staleload(&["run", "--partition", "0:5:0.5"]);
    assert!(!ok);
    assert!(stderr.contains("partition"), "{stderr}");
    let (ok, _, stderr) = staleload(&["run", "--partition", "10:0:0.5"]);
    assert!(!ok);
    assert!(stderr.contains("partition"), "{stderr}");
    // Churn that would empty the cluster.
    let (ok, _, stderr) = staleload(&["run", "--churn", "10:20"]);
    assert!(!ok);
    assert!(stderr.contains("churn"), "{stderr}");
    // Corruption fraction out of range.
    let (ok, _, stderr) = staleload(&["run", "--corrupt", "1.5"]);
    assert!(!ok);
    assert!(stderr.contains("corrupt"), "{stderr}");
    // Hedge factor below 1, and above the cluster size.
    let (ok, _, stderr) = staleload(&["run", "--hedge", "0"]);
    assert!(!ok);
    assert!(stderr.contains("hedge factor"), "{stderr}");
    let (ok, _, stderr) = staleload(&[
        "run",
        "--servers",
        "4",
        "--arrivals",
        "1000",
        "--hedge",
        "99",
        "--info",
        "periodic:5",
    ]);
    assert!(!ok);
    assert!(stderr.contains("exceeds the cluster size"), "{stderr}");
    // Quarantine with a zero window.
    let (ok, _, stderr) = staleload(&["run", "--quarantine", "0:5"]);
    assert!(!ok);
    assert!(stderr.contains("quarantine window"), "{stderr}");
}

#[test]
fn run_with_estimator_info_prints_tail_summary() {
    let (ok, stdout, stderr) = staleload(&[
        "run",
        "--servers",
        "8",
        "--lambda",
        "0.5",
        "--arrivals",
        "10000",
        "--trials",
        "2",
        "--policy",
        "basic-li",
        "--info",
        "ewma:0.3:2",
        "--sketch-cap",
        "256",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("ewma"), "label shows the model:\n{stdout}");
    assert!(stdout.contains("p50/p99/p999"), "{stdout}");
    let (ok, stdout, stderr) = staleload(&[
        "run",
        "--servers",
        "8",
        "--lambda",
        "0.5",
        "--arrivals",
        "10000",
        "--trials",
        "1",
        "--policy",
        "basic-li",
        "--info",
        "ma:2,6,14:2",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("ma("), "label shows the model:\n{stdout}");
}

#[test]
fn run_detail_prints_p999() {
    let (ok, stdout, _) = staleload(&[
        "run",
        "--servers",
        "4",
        "--lambda",
        "0.5",
        "--arrivals",
        "10000",
        "--trials",
        "1",
        "--policy",
        "random",
        "--info",
        "fresh",
        "--detail",
        "--tail-p",
        "0.9",
    ]);
    assert!(ok);
    assert!(stdout.contains("p50/p95/p99/p999"), "{stdout}");
    assert!(stdout.contains("p90 (requested)"), "{stdout}");
}

#[test]
fn bad_tail_flags_fail_with_message() {
    // EWMA weight outside (0, 1].
    let (ok, _, stderr) = staleload(&["run", "--info", "ewma:0"]);
    assert!(!ok);
    assert!(stderr.contains("(0, 1]"), "{stderr}");
    let (ok, _, stderr) = staleload(&["run", "--info", "ewma:1.5"]);
    assert!(!ok);
    assert!(stderr.contains("(0, 1]"), "{stderr}");
    // Horizon list must have exactly three strictly increasing windows.
    let (ok, _, stderr) = staleload(&["run", "--info", "ma:10,2,30"]);
    assert!(!ok);
    assert!(stderr.contains("strictly increasing"), "{stderr}");
    let (ok, _, stderr) = staleload(&["run", "--info", "ma:2,6"]);
    assert!(!ok);
    assert!(stderr.contains("three horizons"), "{stderr}");
    let (ok, _, stderr) = staleload(&["run", "--info", "ma:"]);
    assert!(!ok);
    assert!(!stderr.is_empty());
    // Zero sketch capacity.
    let (ok, _, stderr) = staleload(&["run", "--sketch-cap", "0"]);
    assert!(!ok);
    assert!(stderr.contains("sketch capacity"), "{stderr}");
    // Percentile target outside (0, 1): 0 and 1 are min/max, not
    // interior percentiles.
    for bad in ["0", "1", "1.5", "NaN"] {
        let (ok, _, stderr) = staleload(&["run", "--tail-p", bad]);
        assert!(!ok, "--tail-p {bad} should be rejected");
        assert!(stderr.contains("(0, 1)"), "--tail-p {bad}: {stderr}");
    }
}

#[test]
fn bad_policy_fails_with_message() {
    let (ok, _, stderr) = staleload(&["run", "--policy", "telepathy"]);
    assert!(!ok);
    assert!(stderr.contains("unknown policy"), "{stderr}");
}

#[test]
fn bad_command_fails() {
    let (ok, _, stderr) = staleload(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn compare_prints_policy_panel() {
    let (ok, stdout, stderr) = staleload(&[
        "compare",
        "--servers",
        "8",
        "--lambda",
        "0.5",
        "--arrivals",
        "15000",
        "--trials",
        "2",
        "--info",
        "periodic:2",
    ]);
    assert!(ok, "stderr: {stderr}");
    for needle in ["Random", "k=2", "Greedy", "Basic LI", "vs random"] {
        assert!(stdout.contains(needle), "missing '{needle}':\n{stdout}");
    }
}
