//! The continuous-update model: views delayed by a random lag (§3.1).

use serde::{Deserialize, Serialize};
use staleload_cluster::Cluster;
use staleload_policies::{InfoAge, LoadView};
use staleload_sim::{Dist, SimRng};

use crate::InfoModel;

/// The per-request delay distribution of the continuous-update model.
///
/// The paper examines four distributions with the same mean `T`, "in order
/// of increasing variation": constant, a narrow uniform, a wide uniform, and
/// exponential.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DelaySpec {
    /// Every request sees state exactly `mean` old.
    Constant {
        /// Mean (= constant) delay `T`.
        mean: f64,
    },
    /// Uniform on `[T/2, 3T/2]` (narrow).
    UniformNarrow {
        /// Mean delay `T`.
        mean: f64,
    },
    /// Uniform on `[0, 2T]` (wide).
    UniformWide {
        /// Mean delay `T`.
        mean: f64,
    },
    /// Exponential with mean `T`.
    Exponential {
        /// Mean delay `T`.
        mean: f64,
    },
}

impl DelaySpec {
    /// The mean delay `T`.
    pub fn mean(&self) -> f64 {
        match *self {
            DelaySpec::Constant { mean }
            | DelaySpec::UniformNarrow { mean }
            | DelaySpec::UniformWide { mean }
            | DelaySpec::Exponential { mean } => mean,
        }
    }

    /// The underlying sampling distribution.
    pub fn dist(&self) -> Dist {
        match *self {
            DelaySpec::Constant { mean } => Dist::constant(mean),
            DelaySpec::UniformNarrow { mean } => Dist::uniform(0.5 * mean, 1.5 * mean),
            DelaySpec::UniformWide { mean } => Dist::uniform(0.0, 2.0 * mean),
            DelaySpec::Exponential { mean } => Dist::exponential(mean),
        }
    }

    /// History window the cluster must retain so essentially every delayed
    /// query is answered exactly.
    ///
    /// Bounded distributions use their exact maximum (plus slack); the
    /// exponential uses 40 means, putting the miss probability per query
    /// below `e^-40 ≈ 4e-18`.
    pub fn history_window(&self) -> f64 {
        match *self {
            DelaySpec::Constant { mean } => mean * 1.01 + 1.0,
            DelaySpec::UniformNarrow { mean } => 1.5 * mean + 1.0,
            DelaySpec::UniformWide { mean } => 2.0 * mean + 1.0,
            DelaySpec::Exponential { mean } => 40.0 * mean + 1.0,
        }
    }

    /// A short label for result tables.
    pub fn label(&self) -> &'static str {
        match self {
            DelaySpec::Constant { .. } => "constant",
            DelaySpec::UniformNarrow { .. } => "uniform(T/2,3T/2)",
            DelaySpec::UniformWide { .. } => "uniform(0,2T)",
            DelaySpec::Exponential { .. } => "exponential",
        }
    }
}

/// What an arriving request is told about the age of its view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AgeKnowledge {
    /// Only the configured mean delay `T` is known (paper Fig. 6).
    MeanOnly,
    /// The realized per-request delay is known (paper Fig. 7).
    Actual,
}

/// The continuous-update information model: each arrival observes the exact
/// system state `d` time units in the past, `d` drawn per request from a
/// [`DelaySpec`].
///
/// Requires the cluster to record load history
/// ([`staleload_cluster::Cluster::with_history`] with at least
/// [`DelaySpec::history_window`]).
#[derive(Debug, Clone)]
pub struct ContinuousView {
    delay: DelaySpec,
    dist: Dist,
    knowledge: AgeKnowledge,
    buf: Vec<u32>,
}

impl ContinuousView {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if the delay mean is not positive and finite.
    pub fn new(delay: DelaySpec, knowledge: AgeKnowledge) -> Self {
        let mean = delay.mean();
        assert!(
            mean.is_finite() && mean > 0.0,
            "delay mean must be positive, got {mean}"
        );
        Self {
            delay,
            dist: delay.dist(),
            knowledge,
            buf: Vec::new(),
        }
    }

    /// The configured delay distribution.
    pub fn delay(&self) -> DelaySpec {
        self.delay
    }
}

impl InfoModel for ContinuousView {
    fn next_event(&self) -> Option<f64> {
        None
    }

    fn on_event(&mut self, _now: f64, _cluster: &Cluster) {}

    fn view<'a>(
        &'a mut self,
        now: f64,
        _client: usize,
        cluster: &'a mut Cluster,
        rng: &mut SimRng,
    ) -> LoadView<'a> {
        let d = self.dist.sample(rng);
        cluster.loads_at((now - d).max(0.0), &mut self.buf);
        let age = match self.knowledge {
            AgeKnowledge::MeanOnly => self.delay.mean(),
            AgeKnowledge::Actual => d,
        };
        LoadView {
            loads: &self.buf,
            info: InfoAge::Aged { age },
            ages: None,
        }
    }

    fn after_placement(&mut self, _now: f64, _client: usize, _cluster: &Cluster) {}

    fn required_history_window(&self) -> Option<f64> {
        Some(self.delay.history_window())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use staleload_cluster::Job;

    #[test]
    fn constant_delay_sees_past_state() {
        let mut rng = SimRng::from_seed(1);
        let mut cluster = Cluster::with_history(2, 100.0);
        let mut model =
            ContinuousView::new(DelaySpec::Constant { mean: 5.0 }, AgeKnowledge::Actual);
        cluster.enqueue(0, Job::new(0, 1.0, 100.0), 1.0);
        cluster.enqueue(1, Job::new(1, 4.0, 100.0), 4.0);
        // At t = 7 with delay 5 the view is the state at t = 2: only job 0.
        let view = model.view(7.0, 0, &mut cluster, &mut rng);
        assert_eq!(view.loads, &[1, 0]);
        assert_eq!(view.info, InfoAge::Aged { age: 5.0 });
        // At t = 10 the view (state at t = 5) includes both.
        let view = model.view(10.0, 0, &mut cluster, &mut rng);
        assert_eq!(view.loads, &[1, 1]);
    }

    #[test]
    fn mean_only_reports_mean_age() {
        let mut rng = SimRng::from_seed(2);
        let mut cluster = Cluster::with_history(1, 1000.0);
        let mut model =
            ContinuousView::new(DelaySpec::Exponential { mean: 3.0 }, AgeKnowledge::MeanOnly);
        for _ in 0..50 {
            let view = model.view(500.0, 0, &mut cluster, &mut rng);
            assert_eq!(view.info, InfoAge::Aged { age: 3.0 });
        }
    }

    #[test]
    fn actual_ages_vary_with_the_distribution() {
        let mut rng = SimRng::from_seed(3);
        let mut cluster = Cluster::with_history(1, 1000.0);
        let mut model =
            ContinuousView::new(DelaySpec::UniformWide { mean: 4.0 }, AgeKnowledge::Actual);
        let mut ages = Vec::new();
        for _ in 0..2000 {
            match model.view(500.0, 0, &mut cluster, &mut rng).info {
                InfoAge::Aged { age } => ages.push(age),
                other => panic!("unexpected {other:?}"),
            }
        }
        let mean = ages.iter().sum::<f64>() / ages.len() as f64;
        assert!((mean - 4.0).abs() < 0.2, "{mean}");
        assert!(ages.iter().all(|&a| (0.0..8.0).contains(&a)));
    }

    #[test]
    fn delay_before_time_zero_clamps_to_idle_state() {
        let mut rng = SimRng::from_seed(4);
        let mut cluster = Cluster::with_history(2, 100.0);
        let mut model =
            ContinuousView::new(DelaySpec::Constant { mean: 50.0 }, AgeKnowledge::Actual);
        cluster.enqueue(0, Job::new(0, 1.0, 100.0), 1.0);
        let view = model.view(2.0, 0, &mut cluster, &mut rng);
        assert_eq!(view.loads, &[0, 0], "state before t=0 is an idle cluster");
        assert_eq!(cluster.history_misses(), 0);
    }

    #[test]
    fn windows_cover_the_distributions() {
        for spec in [
            DelaySpec::Constant { mean: 2.0 },
            DelaySpec::UniformNarrow { mean: 2.0 },
            DelaySpec::UniformWide { mean: 2.0 },
        ] {
            let mut rng = SimRng::from_seed(5);
            let d = spec.dist();
            for _ in 0..10_000 {
                assert!(d.sample(&mut rng) <= spec.history_window());
            }
            assert!((d.mean() - 2.0).abs() < 1e-12, "{spec:?}");
        }
    }
}
