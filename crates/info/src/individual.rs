//! The individual-updates model (Mitzenmacher's third model).
//!
//! The paper (§3) omits this model, citing Mitzenmacher's finding that it
//! behaves like the periodic-update model; we implement it so that claim
//! can be checked (see the `ext_individual` experiment).

use staleload_cluster::Cluster;
use staleload_policies::{InfoAge, LoadView};
use staleload_sim::{EventQueue, SimRng};

use crate::corrupt::Corruptor;
use crate::loss::LossChannel;
use crate::{CorruptSpec, InfoModel, LossSpec};

/// Individual updates: every server refreshes *its own* bulletin-board
/// entry once per `period`, on its own schedule, so entries have mixed
/// ages.
///
/// Refresh phases are staggered deterministically (`i·T/n`), the idealized
/// de-synchronised schedule. Because entries age independently there is no
/// single phase for LI to plan over; the view reports the *current mean
/// entry age* (tracked exactly), which Basic LI interprets as its horizon —
/// the natural generalization, and the one that makes the model comparable
/// to `periodic` with the same `T`. Per-entry ages ride along in
/// [`LoadView::ages`] for age-aware policies.
///
/// With a lossy channel ([`IndividualBoard::with_loss`]) each refresh is
/// independently dropped or delayed, and a crashed server skips its
/// refreshes entirely (the schedule keeps ticking so it resumes after
/// recovery).
#[derive(Debug, Clone)]
pub struct IndividualBoard {
    period: f64,
    board: Vec<u32>,
    /// When each entry's current value was sampled from the cluster.
    refreshed_at: Vec<f64>,
    /// Invariant: `refresh_sum == refreshed_at.iter().sum()`.
    refresh_sum: f64,
    /// Scratch buffer for per-entry ages handed out by `view`.
    ages: Vec<f64>,
    pending: EventQueue<usize>,
    channel: Option<LossChannel>,
    corruptor: Option<Corruptor>,
}

impl IndividualBoard {
    /// Creates the board for `n` servers, each refreshing every `period`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `period` is not positive and finite.
    pub fn new(n: usize, period: f64) -> Self {
        assert!(n > 0, "need at least one server");
        assert!(
            period.is_finite() && period > 0.0,
            "period must be positive, got {period}"
        );
        let mut pending = EventQueue::with_capacity(n);
        for server in 0..n {
            pending.push(server as f64 * period / n as f64, server);
        }
        Self {
            period,
            board: vec![0; n],
            refreshed_at: vec![0.0; n],
            refresh_sum: 0.0,
            ages: vec![0.0; n],
            pending,
            channel: None,
            corruptor: None,
        }
    }

    /// Creates a board whose refreshes traverse a lossy/delayed channel
    /// (see [`LossSpec`]); `rng` should be forked from the engine's fault
    /// stream.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `period` is not positive and finite.
    pub fn with_loss(n: usize, period: f64, loss: LossSpec, rng: SimRng) -> Self {
        let mut board = Self::new(n, period);
        board.channel = Some(LossChannel::new(loss, rng));
        board
    }

    /// Routes subsequent refreshes through a report corruptor (see
    /// [`CorruptSpec`]); `rng` should be forked from the engine's fault
    /// stream, and only when `spec` is not a noop, so honest boards stay
    /// bit-identical.
    pub fn attach_corruptor(&mut self, spec: CorruptSpec, rng: SimRng) {
        self.corruptor = Some(Corruptor::new(spec, rng));
    }

    /// Number of reports garbled by the attached corruptor so far.
    pub fn corrupted_reports(&self) -> u64 {
        self.corruptor.as_ref().map_or(0, Corruptor::corrupted)
    }

    /// The per-server refresh period `T`.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Mean age of the board entries at time `now`.
    pub fn mean_age(&self, now: f64) -> f64 {
        (now - self.refresh_sum / self.board.len() as f64).max(0.0)
    }

    fn land(&mut self, server: usize, value: u32, sampled: f64) {
        // Deliveries can arrive out of order; a landing older than the
        // entry's current value is obsolete and discarded.
        if sampled >= self.refreshed_at[server] {
            self.board[server] = value;
            self.refresh_sum += sampled - self.refreshed_at[server];
            self.refreshed_at[server] = sampled;
        }
    }

    fn next_refresh(&self) -> f64 {
        self.pending
            .peek_time()
            .expect("a refresh is always scheduled")
    }
}

impl InfoModel for IndividualBoard {
    fn next_event(&self) -> Option<f64> {
        let refresh = self.next_refresh();
        match self.channel.as_ref().and_then(LossChannel::next_delivery) {
            Some(t) if t < refresh => Some(t),
            _ => Some(refresh),
        }
    }

    fn on_event(&mut self, now: f64, cluster: &Cluster) {
        // Delayed deliveries fire between refreshes (refresh wins ties;
        // the obsolete-landing check makes the order immaterial).
        let next_refresh = self.next_refresh();
        if let Some(channel) = &mut self.channel {
            if channel.next_delivery().is_some_and(|t| t < next_refresh) {
                let landing = channel.pop_delivery().expect("delivery was peeked");
                self.land(landing.server, landing.value, landing.sampled);
                return;
            }
        }
        let (_, server) = self.pending.pop().expect("a refresh is always scheduled");
        self.pending.push(now + self.period, server);
        // A crashed server skips its refresh, and a partitioned one's
        // refresh never reaches the board; the entry decays in place.
        if !cluster.is_up(server) || !cluster.is_visible(server) {
            return;
        }
        let mut value = cluster.load(server);
        if let Some(corruptor) = &mut self.corruptor {
            value = corruptor.garble(value, self.board[server]);
        }
        match &mut self.channel {
            None => self.land(server, value, now),
            Some(channel) => {
                if let Some(l) = channel.send(now, server, value) {
                    self.land(l.server, l.value, l.sampled);
                }
            }
        }
    }

    fn view<'a>(
        &'a mut self,
        now: f64,
        _client: usize,
        _cluster: &'a mut Cluster,
        _rng: &mut SimRng,
    ) -> LoadView<'a> {
        let age = self.mean_age(now);
        for (slot, &at) in self.ages.iter_mut().zip(&self.refreshed_at) {
            *slot = (now - at).max(0.0);
        }
        LoadView {
            loads: &self.board,
            info: InfoAge::Aged { age },
            ages: Some(&self.ages),
        }
    }

    fn after_placement(&mut self, _now: f64, _client: usize, _cluster: &Cluster) {}

    fn required_history_window(&self) -> Option<f64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use staleload_cluster::Job;

    #[test]
    fn entries_refresh_independently() {
        let mut rng = SimRng::from_seed(1);
        let mut cluster = Cluster::new(2);
        let mut board = IndividualBoard::new(2, 10.0);
        cluster.enqueue(0, Job::new(0, 0.5, 100.0), 0.5);
        cluster.enqueue(1, Job::new(1, 0.5, 100.0), 0.5);

        // Server 0 refreshes at t = 0 (before the jobs), server 1 at t = 5.
        board.on_event(0.0, &cluster);
        let v = board.view(1.0, 0, &mut cluster, &mut rng);
        assert_eq!(v.loads, &[1, 0], "server 1's entry is still the cold value");

        assert_eq!(board.next_event(), Some(5.0));
        board.on_event(5.0, &cluster);
        let v = board.view(6.0, 0, &mut cluster, &mut rng);
        assert_eq!(v.loads, &[1, 1]);
    }

    #[test]
    fn mean_age_tracks_refresh_times() {
        let cluster = Cluster::new(2);
        let mut board = IndividualBoard::new(2, 10.0);
        board.on_event(0.0, &cluster); // server 0 at t=0
        board.on_event(5.0, &cluster); // server 1 at t=5
                                       // At t = 7: ages are 7 and 2, mean 4.5.
        assert!((board.mean_age(7.0) - 4.5).abs() < 1e-12);
    }

    #[test]
    fn refreshes_recur_every_period() {
        let cluster = Cluster::new(1);
        let mut board = IndividualBoard::new(1, 4.0);
        assert_eq!(board.next_event(), Some(0.0));
        board.on_event(0.0, &cluster);
        assert_eq!(board.next_event(), Some(4.0));
        board.on_event(4.0, &cluster);
        assert_eq!(board.next_event(), Some(8.0));
    }

    #[test]
    fn per_entry_ages_match_refresh_history() {
        let mut rng = SimRng::from_seed(1);
        let mut cluster = Cluster::new(2);
        let mut board = IndividualBoard::new(2, 10.0);
        board.on_event(0.0, &cluster);
        board.on_event(5.0, &cluster);
        let v = board.view(7.0, 0, &mut cluster, &mut rng);
        assert_eq!(v.ages.unwrap(), &[7.0, 2.0]);
    }

    #[test]
    fn down_server_skips_refresh_but_schedule_continues() {
        let mut rng = SimRng::from_seed(1);
        let mut cluster = Cluster::new(2);
        let mut board = IndividualBoard::new(2, 10.0);
        cluster.enqueue(0, Job::new(0, 0.1, 100.0), 0.1);
        cluster.crash(0, 0.5);
        // Server 0's refresh at t=10 is skipped (it is down)...
        board.on_event(0.0, &cluster);
        board.on_event(5.0, &cluster);
        board.on_event(10.0, &cluster);
        let v = board.view(10.0, 0, &mut cluster, &mut rng);
        assert_eq!(v.loads, &[0, 0]);
        // ...but the schedule keeps ticking for after its recovery.
        cluster.recover(0, 12.0, None);
        board.on_event(15.0, &cluster); // server 1
        board.on_event(20.0, &cluster); // server 0, now up again
        let v = board.view(20.0, 0, &mut cluster, &mut rng);
        assert_eq!(v.loads, &[1, 0]);
    }

    #[test]
    fn full_drop_channel_never_updates() {
        let mut rng = SimRng::from_seed(1);
        let mut cluster = Cluster::new(1);
        let mut board =
            IndividualBoard::with_loss(1, 5.0, LossSpec::drop(1.0), SimRng::from_seed(4));
        cluster.enqueue(0, Job::new(0, 0.1, 100.0), 0.1);
        for t in [0.0, 5.0, 10.0] {
            board.on_event(t, &cluster);
        }
        let v = board.view(10.0, 0, &mut cluster, &mut rng);
        assert_eq!(v.loads, &[0]);
        assert_eq!(v.ages.unwrap(), &[10.0]);
    }
}
