//! The individual-updates model (Mitzenmacher's third model).
//!
//! The paper (§3) omits this model, citing Mitzenmacher's finding that it
//! behaves like the periodic-update model; we implement it so that claim
//! can be checked (see the `ext_individual` experiment).

use staleload_cluster::Cluster;
use staleload_policies::{InfoAge, LoadView};
use staleload_sim::{EventQueue, SimRng};

use crate::InfoModel;

/// Individual updates: every server refreshes *its own* bulletin-board
/// entry once per `period`, on its own schedule, so entries have mixed
/// ages.
///
/// Refresh phases are staggered deterministically (`i·T/n`), the idealized
/// de-synchronised schedule. Because entries age independently there is no
/// single phase for LI to plan over; the view reports the *current mean
/// entry age* (tracked exactly), which Basic LI interprets as its horizon —
/// the natural generalization, and the one that makes the model comparable
/// to `periodic` with the same `T`.
#[derive(Debug, Clone)]
pub struct IndividualBoard {
    period: f64,
    board: Vec<u32>,
    refreshed_at: Vec<f64>,
    refresh_sum: f64,
    pending: EventQueue<usize>,
}

impl IndividualBoard {
    /// Creates the board for `n` servers, each refreshing every `period`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `period` is not positive and finite.
    pub fn new(n: usize, period: f64) -> Self {
        assert!(n > 0, "need at least one server");
        assert!(period.is_finite() && period > 0.0, "period must be positive, got {period}");
        let mut pending = EventQueue::with_capacity(n);
        for server in 0..n {
            pending.push(server as f64 * period / n as f64, server);
        }
        Self {
            period,
            board: vec![0; n],
            refreshed_at: vec![0.0; n],
            refresh_sum: 0.0,
            pending,
        }
    }

    /// The per-server refresh period `T`.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Mean age of the board entries at time `now`.
    pub fn mean_age(&self, now: f64) -> f64 {
        (now - self.refresh_sum / self.board.len() as f64).max(0.0)
    }
}

impl InfoModel for IndividualBoard {
    fn next_event(&self) -> Option<f64> {
        self.pending.peek_time()
    }

    fn on_event(&mut self, now: f64, cluster: &Cluster) {
        let (_, server) = self.pending.pop().expect("a refresh is always scheduled");
        self.board[server] = cluster.load(server);
        self.refresh_sum += now - self.refreshed_at[server];
        self.refreshed_at[server] = now;
        self.pending.push(now + self.period, server);
    }

    fn view<'a>(
        &'a mut self,
        now: f64,
        _client: usize,
        _cluster: &'a mut Cluster,
        _rng: &mut SimRng,
    ) -> LoadView<'a> {
        let age = self.mean_age(now);
        LoadView { loads: &self.board, info: InfoAge::Aged { age } }
    }

    fn after_placement(&mut self, _now: f64, _client: usize, _cluster: &Cluster) {}

    fn required_history_window(&self) -> Option<f64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use staleload_cluster::Job;

    #[test]
    fn entries_refresh_independently() {
        let mut rng = SimRng::from_seed(1);
        let mut cluster = Cluster::new(2);
        let mut board = IndividualBoard::new(2, 10.0);
        cluster.enqueue(0, Job::new(0, 0.5, 100.0), 0.5);
        cluster.enqueue(1, Job::new(1, 0.5, 100.0), 0.5);

        // Server 0 refreshes at t = 0 (before the jobs), server 1 at t = 5.
        board.on_event(0.0, &cluster);
        let v = board.view(1.0, 0, &mut cluster, &mut rng);
        assert_eq!(v.loads, &[1, 0], "server 1's entry is still the cold value");

        assert_eq!(board.next_event(), Some(5.0));
        board.on_event(5.0, &cluster);
        let v = board.view(6.0, 0, &mut cluster, &mut rng);
        assert_eq!(v.loads, &[1, 1]);
    }

    #[test]
    fn mean_age_tracks_refresh_times() {
        let cluster = Cluster::new(2);
        let mut board = IndividualBoard::new(2, 10.0);
        board.on_event(0.0, &cluster); // server 0 at t=0
        board.on_event(5.0, &cluster); // server 1 at t=5
        // At t = 7: ages are 7 and 2, mean 4.5.
        assert!((board.mean_age(7.0) - 4.5).abs() < 1e-12);
    }

    #[test]
    fn refreshes_recur_every_period() {
        let cluster = Cluster::new(1);
        let mut board = IndividualBoard::new(1, 4.0);
        assert_eq!(board.next_event(), Some(0.0));
        board.on_event(0.0, &cluster);
        assert_eq!(board.next_event(), Some(4.0));
        board.on_event(4.0, &cluster);
        assert_eq!(board.next_event(), Some(8.0));
    }
}
