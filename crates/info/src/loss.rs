//! Lossy/delayed update channels for bulletin-board information models.
//!
//! The paper assumes every load report reaches the board. Real update
//! channels drop and delay messages; this module describes that channel so
//! the board models ([`crate::PeriodicBoard`], [`crate::IndividualBoard`])
//! can apply it per entry: each server's report is independently dropped
//! with probability `drop_prob`, and surviving reports land after an
//! exponentially distributed delay of mean `delay_mean`.

use serde::{Deserialize, Serialize};
use staleload_sim::{EventQueue, SimRng};

/// Describes a lossy and/or delayed update channel between servers and a
/// bulletin board.
///
/// `LossSpec::default()` is the paper's perfect channel (nothing dropped,
/// nothing delayed); boards built with it behave identically to boards
/// built without a channel.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LossSpec {
    /// Probability in `[0, 1]` that a refresh of one board entry is lost
    /// (the entry silently keeps its previous value and age).
    pub drop_prob: f64,
    /// Mean of the exponential delivery delay applied to surviving
    /// refreshes; `0` delivers immediately.
    pub delay_mean: f64,
}

impl LossSpec {
    /// A channel that only drops (no delivery delay).
    pub fn drop(p: f64) -> Self {
        Self {
            drop_prob: p,
            delay_mean: 0.0,
        }
    }

    /// A channel that only delays (nothing dropped).
    pub fn delay(mean: f64) -> Self {
        Self {
            drop_prob: 0.0,
            delay_mean: mean,
        }
    }

    /// Whether this channel is the perfect (identity) channel.
    pub fn is_noop(&self) -> bool {
        self.drop_prob == 0.0 && self.delay_mean == 0.0
    }

    /// Checks the parameters are in range.
    ///
    /// # Errors
    ///
    /// Returns a message naming the out-of-range field.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.drop_prob) {
            return Err(format!(
                "drop probability must be in [0, 1], got {}",
                self.drop_prob
            ));
        }
        if !(self.delay_mean.is_finite() && self.delay_mean >= 0.0) {
            return Err(format!(
                "update delay mean must be finite and >= 0, got {}",
                self.delay_mean
            ));
        }
        Ok(())
    }

    /// Short label for result tables, e.g. `drop=0.5` or `drop=0.5+delay=2`.
    pub fn label(&self) -> String {
        match (self.drop_prob > 0.0, self.delay_mean > 0.0) {
            (true, true) => format!("drop={}+delay={}", self.drop_prob, self.delay_mean),
            (true, false) => format!("drop={}", self.drop_prob),
            (false, true) => format!("delay={}", self.delay_mean),
            (false, false) => "lossless".to_string(),
        }
    }
}

/// A board refresh in flight through a delayed channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Landing {
    /// Board entry the refresh belongs to.
    pub server: usize,
    /// The load value that was sampled.
    pub value: u32,
    /// When the value was sampled (its age baseline — *not* the delivery
    /// time).
    pub sampled: f64,
}

/// Runtime state of one lossy/delayed update channel: the RNG that decides
/// drops and delays, and the deliveries still in flight.
///
/// The RNG is forked from the engine's dedicated fault stream, so a
/// channel's draws never perturb the arrival/service/policy/model streams.
#[derive(Debug, Clone)]
pub(crate) struct LossChannel {
    spec: LossSpec,
    rng: SimRng,
    pending: EventQueue<Landing>,
}

impl LossChannel {
    pub fn new(spec: LossSpec, rng: SimRng) -> Self {
        Self {
            spec,
            rng,
            pending: EventQueue::new(),
        }
    }

    /// Time of the earliest in-flight delivery, if any.
    pub fn next_delivery(&self) -> Option<f64> {
        self.pending.peek_time()
    }

    /// Sends one sampled entry through the channel.
    ///
    /// Returns the landing to apply *now* if it is delivered immediately;
    /// returns `None` if the refresh was dropped or is in flight (a
    /// delayed delivery will surface via [`LossChannel::pop_delivery`]).
    pub fn send(&mut self, now: f64, server: usize, value: u32) -> Option<Landing> {
        if self.rng.chance(self.spec.drop_prob) {
            return None;
        }
        let landing = Landing {
            server,
            value,
            sampled: now,
        };
        if self.spec.delay_mean > 0.0 {
            let delay = self.rng.exp(self.spec.delay_mean);
            self.pending.push(now + delay, landing);
            None
        } else {
            Some(landing)
        }
    }

    /// Removes and returns the earliest in-flight delivery.
    pub fn pop_delivery(&mut self) -> Option<Landing> {
        self.pending.pop().map(|(_, l)| l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_noop() {
        assert!(LossSpec::default().is_noop());
        assert!(!LossSpec::drop(0.1).is_noop());
        assert!(!LossSpec::delay(1.0).is_noop());
    }

    #[test]
    fn validation_rejects_out_of_range() {
        assert!(LossSpec::drop(0.0).validate().is_ok());
        assert!(LossSpec::drop(1.0).validate().is_ok());
        assert!(LossSpec::drop(-0.1).validate().is_err());
        assert!(LossSpec::drop(1.1).validate().is_err());
        assert!(LossSpec::delay(f64::INFINITY).validate().is_err());
        assert!(LossSpec::delay(-1.0).validate().is_err());
    }

    #[test]
    fn labels_name_active_components() {
        assert_eq!(LossSpec::default().label(), "lossless");
        assert_eq!(LossSpec::drop(0.5).label(), "drop=0.5");
        assert_eq!(
            LossSpec {
                drop_prob: 0.25,
                delay_mean: 2.0
            }
            .label(),
            "drop=0.25+delay=2"
        );
    }
}
