//! Models of old load information (paper §3).
//!
//! A selection policy never sees the cluster directly; it sees a
//! [`staleload_policies::LoadView`] produced by an *information model* that
//! controls how stale the loads are and what the policy knows about their
//! age:
//!
//! * [`PeriodicBoard`] — a bulletin board refreshed every `T` time units;
//!   every arrival in a phase sees the phase-start snapshot (§3.1).
//! * [`ContinuousView`] — each arrival sees the exact system state a random
//!   delay `d` ago; the policy is told either the *mean* delay or the
//!   realized per-request delay (§3.1, Figs. 6–7).
//! * [`UpdateOnAccess`] — each client's view is the snapshot captured when
//!   its *previous* request reached a server (§3.2).
//! * [`FreshView`] — zero staleness (extension; the omniscient reference
//!   used for validation).
//! * [`EwmaBoard`] / [`MultiHorizonBoard`] — periodic boards that publish
//!   *filtered* load estimates (an exponentially weighted moving average,
//!   or a blend of moving averages over several look-back horizons)
//!   instead of the raw snapshot (extension; the tail-latency program).
//!
//! All models implement [`InfoModel`], the small interface the simulation
//! driver in `staleload-core` consumes.
//!
//! # Example
//!
//! ```
//! use staleload_cluster::{Cluster, Job};
//! use staleload_info::{InfoModel, PeriodicBoard};
//! use staleload_policies::InfoAge;
//! use staleload_sim::SimRng;
//!
//! let mut rng = SimRng::from_seed(1);
//! let mut cluster = Cluster::new(2);
//! let mut board = PeriodicBoard::new(2, 5.0);
//!
//! cluster.enqueue(0, Job::new(0, 1.0, 10.0), 1.0);
//! // Before the first refresh the board still shows the start-of-phase state.
//! let view = board.view(2.0, 0, &mut cluster, &mut rng);
//! assert_eq!(view.loads, &[0, 0]);
//!
//! // The refresh at t = 5 publishes the true loads.
//! assert_eq!(board.next_event(), Some(5.0));
//! board.on_event(5.0, &cluster);
//! let view = board.view(6.0, 0, &mut cluster, &mut rng);
//! assert_eq!(view.loads, &[1, 0]);
//! assert!(matches!(view.info, InfoAge::Phase { epoch: 1, .. }));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod continuous;
mod corrupt;
mod dispatch;
mod estimator;
mod individual;
mod loss;
mod periodic;
mod spec;
mod update_on_access;

pub use continuous::{AgeKnowledge, ContinuousView, DelaySpec};
pub use corrupt::CorruptSpec;
pub use dispatch::InfoDispatch;
pub use estimator::{EwmaBoard, MultiHorizonBoard};
pub use individual::IndividualBoard;
pub use loss::LossSpec;
pub use periodic::PeriodicBoard;
pub use spec::InfoSpec;
pub use update_on_access::UpdateOnAccess;

use staleload_cluster::Cluster;
use staleload_policies::{InfoAge, LoadView};
use staleload_sim::SimRng;

/// A model of how load information ages between servers and clients.
///
/// The driver calls [`InfoModel::next_event`]/[`InfoModel::on_event`] to let
/// the model refresh internal state (only the periodic board uses this),
/// [`InfoModel::view`] to obtain the stale view an arriving request decides
/// on, and [`InfoModel::after_placement`] once the job has been enqueued
/// (only update-on-access uses this, to capture the reply snapshot).
pub trait InfoModel {
    /// Absolute time of the model's next internal event, if any.
    fn next_event(&self) -> Option<f64>;

    /// Handles the model event scheduled for `now`.
    fn on_event(&mut self, now: f64, cluster: &Cluster);

    /// Produces the load view for a request arriving at `now` from `client`.
    ///
    /// Takes the cluster mutably because answering a delayed view queries
    /// (and lazily prunes) its load history.
    fn view<'a>(
        &'a mut self,
        now: f64,
        client: usize,
        cluster: &'a mut Cluster,
        rng: &mut SimRng,
    ) -> LoadView<'a>;

    /// Notifies the model that `client`'s job was placed at `now`.
    fn after_placement(&mut self, now: f64, client: usize, cluster: &Cluster);

    /// History window the cluster must retain for this model
    /// (`None` = no history needed).
    fn required_history_window(&self) -> Option<f64>;
}

/// Zero-staleness information: every arrival sees the true current loads
/// with age 0 (extension; the paper's "fresh information" limit).
///
/// Pairing this with `Greedy` gives the omniscient least-loaded reference
/// that validation tests compare against.
#[derive(Debug, Clone, Copy, Default)]
pub struct FreshView;

impl InfoModel for FreshView {
    fn next_event(&self) -> Option<f64> {
        None
    }

    fn on_event(&mut self, _now: f64, _cluster: &Cluster) {}

    fn view<'a>(
        &'a mut self,
        _now: f64,
        _client: usize,
        cluster: &'a mut Cluster,
        _rng: &mut SimRng,
    ) -> LoadView<'a> {
        LoadView {
            loads: cluster.loads(),
            info: InfoAge::Aged { age: 0.0 },
            ages: None,
        }
    }

    fn after_placement(&mut self, _now: f64, _client: usize, _cluster: &Cluster) {}

    fn required_history_window(&self) -> Option<f64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use staleload_cluster::Job;

    #[test]
    fn fresh_view_tracks_live_loads() {
        let mut rng = SimRng::from_seed(1);
        let mut cluster = Cluster::new(2);
        let mut model = FreshView;
        cluster.enqueue(1, Job::new(0, 0.5, 1.0), 0.5);
        let view = model.view(1.0, 0, &mut cluster, &mut rng);
        assert_eq!(view.loads, &[0, 1]);
        assert_eq!(view.info, InfoAge::Aged { age: 0.0 });
        assert_eq!(model.next_event(), None);
        assert_eq!(model.required_history_window(), None);
    }
}
