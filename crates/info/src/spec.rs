//! Declarative information-model specifications for experiment configuration.

use serde::{Deserialize, Serialize};

use staleload_sim::SimRng;

use crate::{
    AgeKnowledge, ContinuousView, DelaySpec, EwmaBoard, FreshView, IndividualBoard, InfoModel,
    LossSpec, MultiHorizonBoard, PeriodicBoard, UpdateOnAccess,
};

/// A serializable description of an information model, used by the
/// experiment harness.
///
/// # Example
///
/// ```
/// use staleload_info::InfoSpec;
///
/// let spec = InfoSpec::Periodic { period: 10.0 };
/// let model = spec.build(100, 1);
/// assert_eq!(model.next_event(), Some(10.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum InfoSpec {
    /// Bulletin board refreshed every `period` (§3.1).
    Periodic {
        /// Refresh period `T`.
        period: f64,
    },
    /// Per-request random delay (§3.1).
    Continuous {
        /// Delay distribution.
        delay: DelaySpec,
        /// Whether the realized delay is known per request.
        knowledge: AgeKnowledge,
    },
    /// Per-client snapshots refreshed by the client's own requests (§3.2).
    UpdateOnAccess,
    /// Each server refreshes its own board entry every `period`, on its own
    /// schedule (Mitzenmacher's *individual updates* model, which the paper
    /// omits as similar to periodic — implemented here to check that).
    Individual {
        /// Per-server refresh period `T`.
        period: f64,
    },
    /// Zero staleness (validation extension).
    Fresh,
    /// Periodic board publishing exponentially weighted moving averages
    /// of the sampled loads instead of raw snapshots (tail-latency
    /// extension).
    Ewma {
        /// Sampling/refresh period `T`.
        period: f64,
        /// Smoothing weight on the newest sample, in `(0, 1]`.
        alpha: f64,
    },
    /// Periodic board publishing the equal-weight blend of moving
    /// averages over three look-back horizons (tail-latency extension).
    MultiHorizon {
        /// Sampling/refresh period `T`.
        period: f64,
        /// Look-back horizons in time units, strictly increasing.
        windows: [f64; 3],
    },
}

impl InfoSpec {
    /// Instantiates the model for `servers` servers and `clients` clients.
    pub fn build(&self, servers: usize, clients: usize) -> Box<dyn InfoModel + Send> {
        match *self {
            InfoSpec::Periodic { period } => Box::new(PeriodicBoard::new(servers, period)),
            InfoSpec::Continuous { delay, knowledge } => {
                Box::new(ContinuousView::new(delay, knowledge))
            }
            InfoSpec::UpdateOnAccess => Box::new(UpdateOnAccess::new(clients, servers)),
            InfoSpec::Individual { period } => Box::new(IndividualBoard::new(servers, period)),
            InfoSpec::Fresh => Box::new(FreshView),
            InfoSpec::Ewma { period, alpha } => Box::new(EwmaBoard::new(servers, period, alpha)),
            InfoSpec::MultiHorizon { period, windows } => {
                Box::new(MultiHorizonBoard::new(servers, period, windows))
            }
        }
    }

    /// Instantiates the model with its board refreshes routed through a
    /// lossy/delayed update channel (fault injection).
    ///
    /// Only the bulletin-board models have an update channel to disturb;
    /// returns `None` for the others (the caller should surface that as a
    /// configuration error). `rng` should be forked from the engine's
    /// fault stream so the channel's draws stay off the fault-free
    /// streams.
    pub fn build_lossy(
        &self,
        servers: usize,
        loss: LossSpec,
        rng: SimRng,
    ) -> Option<Box<dyn InfoModel + Send>> {
        match *self {
            InfoSpec::Periodic { period } => Some(Box::new(PeriodicBoard::with_loss(
                servers, period, loss, rng,
            ))),
            InfoSpec::Individual { period } => Some(Box::new(IndividualBoard::with_loss(
                servers, period, loss, rng,
            ))),
            _ => None,
        }
    }

    /// Whether [`InfoSpec::build_lossy`] supports this model.
    pub fn supports_loss(&self) -> bool {
        matches!(
            self,
            InfoSpec::Periodic { .. } | InfoSpec::Individual { .. }
        )
    }

    /// Checks the spec's parameters are in range, so a driver can reject
    /// a bad configuration with an error instead of the constructor
    /// assertions firing mid-run.
    ///
    /// # Errors
    ///
    /// Returns a message naming the out-of-range parameter.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            InfoSpec::Periodic { period } | InfoSpec::Individual { period } => {
                if !(period.is_finite() && *period > 0.0) {
                    return Err(format!(
                        "refresh period must be positive and finite, got {period}"
                    ));
                }
            }
            InfoSpec::Continuous { delay, .. } => {
                let mean = delay.mean();
                if !(mean.is_finite() && mean >= 0.0) {
                    return Err(format!(
                        "delay mean must be non-negative and finite, got {mean}"
                    ));
                }
            }
            InfoSpec::Ewma { period, alpha } => {
                if !(period.is_finite() && *period > 0.0) {
                    return Err(format!(
                        "refresh period must be positive and finite, got {period}"
                    ));
                }
                if !(alpha.is_finite() && *alpha > 0.0 && *alpha <= 1.0) {
                    return Err(format!("EWMA weight must be in (0, 1], got {alpha}"));
                }
            }
            InfoSpec::MultiHorizon { period, windows } => {
                if !(period.is_finite() && *period > 0.0) {
                    return Err(format!(
                        "refresh period must be positive and finite, got {period}"
                    ));
                }
                if !windows.iter().all(|w| w.is_finite() && *w > 0.0) {
                    return Err(format!(
                        "horizon windows must be positive and finite, got {windows:?}"
                    ));
                }
                if !(windows[0] < windows[1] && windows[1] < windows[2]) {
                    return Err(format!(
                        "horizon windows must be strictly increasing, got {windows:?}"
                    ));
                }
            }
            InfoSpec::UpdateOnAccess | InfoSpec::Fresh => {}
        }
        Ok(())
    }

    /// History window the cluster must retain for this model.
    pub fn history_window(&self) -> Option<f64> {
        match self {
            InfoSpec::Continuous { delay, .. } => Some(delay.history_window()),
            _ => None,
        }
    }

    /// A short label for result tables.
    pub fn label(&self) -> String {
        match self {
            InfoSpec::Periodic { period } => format!("periodic(T={period})"),
            InfoSpec::Continuous { delay, knowledge } => {
                let k = match knowledge {
                    AgeKnowledge::MeanOnly => "mean-known",
                    AgeKnowledge::Actual => "age-known",
                };
                format!("continuous({}, T={}, {k})", delay.label(), delay.mean())
            }
            InfoSpec::UpdateOnAccess => "update-on-access".to_string(),
            InfoSpec::Individual { period } => format!("individual(T={period})"),
            InfoSpec::Fresh => "fresh".to_string(),
            InfoSpec::Ewma { period, alpha } => format!("ewma(α={alpha}, T={period})"),
            InfoSpec::MultiHorizon { period, windows } => format!(
                "ma({}/{}/{}, T={period})",
                windows[0], windows[1], windows[2]
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_spec_builds() {
        let specs = [
            InfoSpec::Periodic { period: 5.0 },
            InfoSpec::Continuous {
                delay: DelaySpec::Exponential { mean: 2.0 },
                knowledge: AgeKnowledge::MeanOnly,
            },
            InfoSpec::UpdateOnAccess,
            InfoSpec::Individual { period: 3.0 },
            InfoSpec::Fresh,
            InfoSpec::Ewma {
                period: 2.0,
                alpha: 0.3,
            },
            InfoSpec::MultiHorizon {
                period: 2.0,
                windows: [2.0, 4.0, 8.0],
            },
        ];
        for spec in specs {
            let model = spec.build(4, 3);
            let _ = model.next_event();
            assert!(!spec.label().is_empty());
        }
    }

    #[test]
    fn lossy_builds_only_for_boards() {
        let loss = LossSpec::drop(0.5);
        assert!(InfoSpec::Periodic { period: 5.0 }.supports_loss());
        assert!(InfoSpec::Individual { period: 5.0 }.supports_loss());
        assert!(!InfoSpec::Fresh.supports_loss());
        assert!(!InfoSpec::UpdateOnAccess.supports_loss());
        assert!(InfoSpec::Periodic { period: 5.0 }
            .build_lossy(4, loss, SimRng::from_seed(1))
            .is_some());
        assert!(InfoSpec::Fresh
            .build_lossy(4, loss, SimRng::from_seed(1))
            .is_none());
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        assert!(InfoSpec::Periodic { period: 5.0 }.validate().is_ok());
        assert!(InfoSpec::Periodic { period: 0.0 }.validate().is_err());
        assert!(InfoSpec::Individual { period: f64::NAN }
            .validate()
            .is_err());
        assert!(InfoSpec::Fresh.validate().is_ok());
    }

    #[test]
    fn validate_checks_estimator_knobs() {
        let ok = InfoSpec::Ewma {
            period: 2.0,
            alpha: 0.5,
        };
        assert!(ok.validate().is_ok());
        for alpha in [0.0, -0.5, 1.5, f64::NAN] {
            let err = InfoSpec::Ewma { period: 2.0, alpha }
                .validate()
                .unwrap_err();
            assert!(err.contains("(0, 1]"), "{err}");
        }
        assert!(InfoSpec::Ewma {
            period: 0.0,
            alpha: 0.5
        }
        .validate()
        .is_err());

        let ok = InfoSpec::MultiHorizon {
            period: 2.0,
            windows: [2.0, 4.0, 8.0],
        };
        assert!(ok.validate().is_ok());
        for windows in [
            [4.0, 2.0, 8.0],
            [2.0, 2.0, 8.0],
            [0.0, 4.0, 8.0],
            [2.0, 4.0, f64::INFINITY],
        ] {
            assert!(
                InfoSpec::MultiHorizon {
                    period: 2.0,
                    windows
                }
                .validate()
                .is_err(),
                "windows {windows:?} must be rejected"
            );
        }
        assert!(InfoSpec::MultiHorizon {
            period: -1.0,
            windows: [2.0, 4.0, 8.0]
        }
        .validate()
        .is_err());
    }

    #[test]
    fn estimators_do_not_support_loss() {
        let loss = LossSpec::drop(0.5);
        for spec in [
            InfoSpec::Ewma {
                period: 2.0,
                alpha: 0.5,
            },
            InfoSpec::MultiHorizon {
                period: 2.0,
                windows: [2.0, 4.0, 8.0],
            },
        ] {
            assert!(!spec.supports_loss());
            assert!(spec.build_lossy(4, loss, SimRng::from_seed(1)).is_none());
            assert!(spec.history_window().is_none());
        }
    }

    #[test]
    fn history_window_only_for_continuous() {
        assert!(InfoSpec::Periodic { period: 1.0 }
            .history_window()
            .is_none());
        assert!(InfoSpec::UpdateOnAccess.history_window().is_none());
        let c = InfoSpec::Continuous {
            delay: DelaySpec::Constant { mean: 3.0 },
            knowledge: AgeKnowledge::Actual,
        };
        assert!(c.history_window().unwrap() >= 3.0);
    }
}
