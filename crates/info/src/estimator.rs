//! Smoothing load estimators over the periodic bulletin board (ISSUE 8).
//!
//! The paper's periodic board publishes the raw phase-start snapshot;
//! these boards publish a *filtered* load signal instead, on the same
//! refresh schedule:
//!
//! * [`EwmaBoard`] — each entry is an exponentially weighted moving
//!   average of that server's sampled loads:
//!   `est ← α·sample + (1−α)·est` (the first sample initializes).
//! * [`MultiHorizonBoard`] — each entry is the equal-weight blend of the
//!   sample means over three look-back horizons (Unix load-average
//!   style, e.g. 1/5/15 periods), so transient spikes are discounted
//!   against the longer-term trend.
//!
//! Both are deterministic — no RNG, no wall clock — and publish rounded
//! `u32` loads so policies see the same integer board shape as the
//! snapshot models. A crashed or partitioned server contributes no
//! sample and its estimator state freezes; the entry decays in place
//! exactly like [`crate::PeriodicBoard`]'s, with its per-entry age
//! growing until the server reports again.

use std::collections::VecDeque;

use staleload_cluster::Cluster;
use staleload_policies::{InfoAge, LoadView};
use staleload_sim::SimRng;

use crate::InfoModel;

/// Shared periodic-refresh scaffolding: board values, per-entry sample
/// times, and the phase/epoch bookkeeping policies key their caches on.
#[derive(Debug, Clone)]
struct BoardCore {
    period: f64,
    board: Vec<u32>,
    entry_times: Vec<f64>,
    ages: Vec<f64>,
    phase_start: f64,
    epoch: u64,
}

impl BoardCore {
    fn new(n: usize, period: f64) -> Self {
        assert!(n > 0, "need at least one server");
        assert!(
            period.is_finite() && period > 0.0,
            "period must be positive, got {period}"
        );
        Self {
            period,
            board: vec![0; n],
            entry_times: vec![0.0; n],
            ages: vec![0.0; n],
            phase_start: 0.0,
            epoch: 0,
        }
    }

    fn view(&mut self, now: f64) -> LoadView<'_> {
        for (age, &at) in self.ages.iter_mut().zip(&self.entry_times) {
            *age = (now - at).max(0.0);
        }
        LoadView {
            loads: &self.board,
            info: InfoAge::Phase {
                start: self.phase_start,
                length: self.period,
                now,
                epoch: self.epoch,
            },
            ages: Some(&self.ages),
        }
    }
}

/// A bulletin board that publishes per-server EWMA load estimates every
/// `period` time units.
#[derive(Debug, Clone)]
pub struct EwmaBoard {
    core: BoardCore,
    alpha: f64,
    /// Current estimate per server; NaN until the first sample lands.
    est: Vec<f64>,
}

impl EwmaBoard {
    /// Creates a board for `n` servers, sampling every `period` and
    /// smoothing with weight `alpha` on the newest sample.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `period` is not positive and finite, or
    /// `alpha` is outside `(0, 1]` (α = 1 degenerates to the raw
    /// periodic snapshot, a useful identity check; α = 0 would never
    /// observe anything).
    pub fn new(n: usize, period: f64, alpha: f64) -> Self {
        assert!(
            alpha.is_finite() && alpha > 0.0 && alpha <= 1.0,
            "EWMA weight must be in (0, 1], got {alpha}"
        );
        Self {
            core: BoardCore::new(n, period),
            alpha,
            est: vec![f64::NAN; n],
        }
    }

    /// The smoothing weight α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The refresh period `T`.
    pub fn period(&self) -> f64 {
        self.core.period
    }
}

impl InfoModel for EwmaBoard {
    fn next_event(&self) -> Option<f64> {
        Some(self.core.phase_start + self.core.period)
    }

    fn on_event(&mut self, now: f64, cluster: &Cluster) {
        for server in 0..self.core.board.len() {
            // A down or partitioned server sends no sample: its estimate
            // freezes and the entry decays in place.
            if !cluster.is_up(server) || !cluster.is_visible(server) {
                continue;
            }
            let sample = f64::from(cluster.load(server));
            let est = &mut self.est[server];
            *est = if est.is_nan() {
                sample
            } else {
                self.alpha * sample + (1.0 - self.alpha) * *est
            };
            // Round-half-up to the integer board shape policies expect.
            self.core.board[server] = est.round() as u32;
            self.core.entry_times[server] = now;
        }
        self.core.phase_start = now;
        self.core.epoch += 1;
    }

    fn view<'a>(
        &'a mut self,
        now: f64,
        _client: usize,
        _cluster: &'a mut Cluster,
        _rng: &mut SimRng,
    ) -> LoadView<'a> {
        self.core.view(now)
    }

    fn after_placement(&mut self, _now: f64, _client: usize, _cluster: &Cluster) {}

    fn required_history_window(&self) -> Option<f64> {
        None
    }
}

/// A bulletin board that publishes, every `period`, the equal-weight
/// blend of each server's mean sampled load over three look-back
/// horizons (`windows`, in simulation time units, strictly increasing).
#[derive(Debug, Clone)]
pub struct MultiHorizonBoard {
    core: BoardCore,
    windows: [f64; 3],
    /// Per-server `(sample time, sample)` history, oldest first, trimmed
    /// to the longest window each refresh.
    history: Vec<VecDeque<(f64, f64)>>,
}

impl MultiHorizonBoard {
    /// Creates a board for `n` servers sampling every `period`, blending
    /// moving averages over the three `windows`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `period` is not positive and finite, or
    /// `windows` is not positive, finite, and strictly increasing.
    pub fn new(n: usize, period: f64, windows: [f64; 3]) -> Self {
        assert!(
            windows.iter().all(|w| w.is_finite() && *w > 0.0),
            "horizon windows must be positive and finite, got {windows:?}"
        );
        assert!(
            windows[0] < windows[1] && windows[1] < windows[2],
            "horizon windows must be strictly increasing, got {windows:?}"
        );
        Self {
            core: BoardCore::new(n, period),
            windows,
            history: (0..n).map(|_| VecDeque::new()).collect(),
        }
    }

    /// The look-back horizons, shortest first.
    pub fn windows(&self) -> [f64; 3] {
        self.windows
    }

    /// The refresh period `T`.
    pub fn period(&self) -> f64 {
        self.core.period
    }
}

impl InfoModel for MultiHorizonBoard {
    fn next_event(&self) -> Option<f64> {
        Some(self.core.phase_start + self.core.period)
    }

    fn on_event(&mut self, now: f64, cluster: &Cluster) {
        let longest = self.windows[2];
        for server in 0..self.core.board.len() {
            if !cluster.is_up(server) || !cluster.is_visible(server) {
                continue;
            }
            let history = &mut self.history[server];
            history.push_back((now, f64::from(cluster.load(server))));
            // A horizon `w` sees the half-open interval `(now − w, now]`:
            // with period-aligned samples, a window of k periods covers
            // exactly the k newest samples. Trim what the longest horizon
            // can no longer see.
            while history.front().is_some_and(|&(t, _)| t <= now - longest) {
                history.pop_front();
            }
            // One pass, summing oldest→newest per horizon — a fixed
            // association, so the blend is bit-deterministic.
            let mut sums = [0.0f64; 3];
            let mut counts = [0u64; 3];
            for &(t, sample) in history.iter() {
                for (k, &w) in self.windows.iter().enumerate() {
                    if t > now - w {
                        sums[k] += sample;
                        counts[k] += 1;
                    }
                }
            }
            let mut blend = 0.0;
            for k in 0..3 {
                // The newest sample is always inside every window, so
                // counts[k] ≥ 1 here.
                blend += sums[k] / counts[k] as f64;
            }
            blend /= 3.0;
            self.core.board[server] = blend.round() as u32;
            self.core.entry_times[server] = now;
        }
        self.core.phase_start = now;
        self.core.epoch += 1;
    }

    fn view<'a>(
        &'a mut self,
        now: f64,
        _client: usize,
        _cluster: &'a mut Cluster,
        _rng: &mut SimRng,
    ) -> LoadView<'a> {
        self.core.view(now)
    }

    fn after_placement(&mut self, _now: f64, _client: usize, _cluster: &Cluster) {}

    fn required_history_window(&self) -> Option<f64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use staleload_cluster::Job;

    fn loaded_cluster(n: usize, loads: &[usize]) -> Cluster {
        let mut cluster = Cluster::new(n);
        let mut id = 0;
        for (server, &count) in loads.iter().enumerate() {
            for _ in 0..count {
                cluster.enqueue(server, Job::new(id, 0.1, 1_000.0), 0.1);
                id += 1;
            }
        }
        cluster
    }

    #[test]
    fn ewma_first_sample_initializes_then_smooths() {
        let mut rng = SimRng::from_seed(1);
        let mut cluster = loaded_cluster(2, &[4, 0]);
        let mut board = EwmaBoard::new(2, 10.0, 0.5);
        assert_eq!(board.next_event(), Some(10.0));
        board.on_event(10.0, &cluster);
        // First sample initializes: est = 4.
        assert_eq!(board.view(10.0, 0, &mut cluster, &mut rng).loads, &[4, 0]);
        // Load drops to 0; est = 0.5·0 + 0.5·4 = 2.
        for _ in 0..4 {
            cluster.complete(0, 20.0);
        }
        board.on_event(20.0, &cluster);
        assert_eq!(board.view(20.0, 0, &mut cluster, &mut rng).loads, &[2, 0]);
        // est = 0.5·0 + 0.5·2 = 1.
        board.on_event(30.0, &cluster);
        assert_eq!(board.view(30.0, 0, &mut cluster, &mut rng).loads, &[1, 0]);
    }

    #[test]
    fn ewma_alpha_one_matches_raw_snapshots() {
        let mut rng = SimRng::from_seed(1);
        let mut cluster = loaded_cluster(3, &[2, 5, 0]);
        let mut board = EwmaBoard::new(3, 5.0, 1.0);
        board.on_event(5.0, &cluster);
        assert_eq!(
            board.view(5.0, 0, &mut cluster, &mut rng).loads,
            &[2, 5, 0],
            "α = 1 keeps no memory: the board is the snapshot"
        );
    }

    #[test]
    fn ewma_down_server_entry_freezes_and_ages() {
        let mut rng = SimRng::from_seed(1);
        let mut cluster = loaded_cluster(2, &[3, 3]);
        let mut board = EwmaBoard::new(2, 10.0, 0.5);
        board.on_event(10.0, &cluster);
        cluster.crash(1, 12.0);
        board.on_event(20.0, &cluster);
        let view = board.view(20.0, 0, &mut cluster, &mut rng);
        assert_eq!(view.loads[1], 3, "crashed server's entry keeps its value");
        let ages = view.ages.expect("estimator boards report ages");
        assert_eq!(ages[0], 0.0);
        assert_eq!(ages[1], 10.0, "stale entry's age keeps growing");
    }

    #[test]
    fn ewma_phase_metadata_matches_periodic_shape() {
        let mut rng = SimRng::from_seed(1);
        let mut cluster = loaded_cluster(2, &[0, 0]);
        let mut board = EwmaBoard::new(2, 10.0, 0.3);
        board.on_event(10.0, &cluster);
        match board.view(12.5, 0, &mut cluster, &mut rng).info {
            InfoAge::Phase {
                start,
                length,
                now,
                epoch,
            } => {
                assert_eq!(start, 10.0);
                assert_eq!(length, 10.0);
                assert_eq!(now, 12.5);
                assert_eq!(epoch, 1);
            }
            other => panic!("expected phase info, got {other:?}"),
        }
    }

    #[test]
    fn multi_horizon_blends_window_means() {
        let mut rng = SimRng::from_seed(1);
        // Windows of 1/2/3 periods: after samples 6, 0, 0 (newest last)
        // the means are 0 (last 1), 0 (last 2), 2 (last 3) → blend 2/3 → 1.
        let mut cluster = loaded_cluster(1, &[6]);
        let mut board = MultiHorizonBoard::new(1, 10.0, [10.0, 20.0, 30.0]);
        board.on_event(10.0, &cluster);
        assert_eq!(board.view(10.0, 0, &mut cluster, &mut rng).loads, &[6]);
        for _ in 0..6 {
            cluster.complete(0, 15.0);
        }
        board.on_event(20.0, &cluster);
        // Means: last-10 = 0, last-20 = 3, last-30 = 3 → blend 2.
        assert_eq!(board.view(20.0, 0, &mut cluster, &mut rng).loads, &[2]);
        board.on_event(30.0, &cluster);
        // Means: 0, 0, 2 → blend 2/3 rounds to 1.
        assert_eq!(board.view(30.0, 0, &mut cluster, &mut rng).loads, &[1]);
        board.on_event(40.0, &cluster);
        // The spike has left every window: all means 0.
        assert_eq!(board.view(40.0, 0, &mut cluster, &mut rng).loads, &[0]);
    }

    #[test]
    fn multi_horizon_discounts_a_transient_spike() {
        let mut rng = SimRng::from_seed(1);
        let mut quiet = loaded_cluster(1, &[0]);
        let mut board = MultiHorizonBoard::new(1, 1.0, [1.0, 5.0, 15.0]);
        for t in 1..=10 {
            board.on_event(f64::from(t), &quiet);
        }
        // A one-period spike of 9 jobs.
        let spike = loaded_cluster(1, &[9]);
        board.on_event(11.0, &spike);
        let published = board.view(11.0, 0, &mut quiet, &mut rng).loads[0];
        assert!(
            published < 9,
            "the blend must discount the spike, got {published}"
        );
        assert!(published >= 1, "but not erase it, got {published}");
    }

    #[test]
    fn estimators_are_deterministic() {
        let make = || {
            let cluster = loaded_cluster(3, &[1, 4, 2]);
            let mut e = EwmaBoard::new(3, 2.0, 0.25);
            let mut m = MultiHorizonBoard::new(3, 2.0, [2.0, 4.0, 8.0]);
            for t in 1..=20 {
                e.on_event(f64::from(t) * 2.0, &cluster);
                m.on_event(f64::from(t) * 2.0, &cluster);
            }
            (e.core.board.clone(), m.core.board.clone())
        };
        assert_eq!(make(), make());
    }

    #[test]
    #[should_panic(expected = "EWMA weight")]
    fn ewma_rejects_zero_alpha() {
        let _ = EwmaBoard::new(2, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn multi_horizon_rejects_unsorted_windows() {
        let _ = MultiHorizonBoard::new(2, 1.0, [5.0, 2.0, 8.0]);
    }
}
