//! Corrupted load reports (byzantine or wrapped counters).
//!
//! The paper assumes every load report that reaches the board is honest.
//! Real telemetry planes emit garbage: a crashed exporter reports zero, a
//! wedged agent repeats its last value, a wrapped counter comes back
//! scaled. This module describes that corruption so the board models
//! ([`crate::PeriodicBoard`], [`crate::IndividualBoard`]) can apply it per
//! report: each refresh is independently garbled with probability
//! `fraction`, choosing uniformly between the three failure shapes.

use serde::{Deserialize, Serialize};
use staleload_sim::SimRng;

/// Factor applied to a report garbled by the *scaled* failure shape — a
/// counter misread by a few binary orders of magnitude, large enough to
/// repel any load-comparing policy from the server.
const SCALE_FACTOR: u32 = 8;

/// Describes a report-corruption fault: a fraction of load reports are
/// garbled in flight (zeroed, stuck at the previous value, or scaled up).
///
/// `CorruptSpec::default()` (fraction 0) is the honest channel; boards
/// with an attached zero-fraction corruptor still draw from its RNG fork,
/// so the engine must only attach one when `fraction > 0`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CorruptSpec {
    /// Probability in `[0, 1]` that a single load report is garbled.
    pub fraction: f64,
}

impl CorruptSpec {
    /// A corruptor garbling the given fraction of reports.
    pub fn new(fraction: f64) -> Self {
        Self { fraction }
    }

    /// Whether this spec corrupts nothing.
    pub fn is_noop(&self) -> bool {
        self.fraction == 0.0
    }

    /// Checks the parameters are in range.
    ///
    /// # Errors
    ///
    /// Returns a message naming the out-of-range field.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.fraction.is_finite() && (0.0..=1.0).contains(&self.fraction)) {
            return Err(format!(
                "corrupt fraction must be in [0, 1], got {}",
                self.fraction
            ));
        }
        Ok(())
    }

    /// Short label for result tables, e.g. `corrupt=0.2`.
    pub fn label(&self) -> String {
        format!("corrupt={}", self.fraction)
    }
}

/// Runtime state of a report corruptor: the RNG deciding which reports are
/// garbled and how, plus a count of reports actually garbled.
///
/// The RNG is forked from the engine's dedicated fault stream, so the
/// corruptor's draws never perturb the arrival/service/policy/model
/// streams.
#[derive(Debug, Clone)]
pub(crate) struct Corruptor {
    spec: CorruptSpec,
    rng: SimRng,
    corrupted: u64,
}

impl Corruptor {
    pub fn new(spec: CorruptSpec, rng: SimRng) -> Self {
        Self {
            spec,
            rng,
            corrupted: 0,
        }
    }

    /// Number of reports garbled so far.
    pub fn corrupted(&self) -> u64 {
        self.corrupted
    }

    /// Passes one sampled load report through the corruptor.
    ///
    /// `fresh` is the true sampled value; `current` is the board entry the
    /// report would replace (used by the *stuck* failure shape). Returns
    /// the value that should actually be reported.
    pub fn garble(&mut self, fresh: u32, current: u32) -> u32 {
        if !self.rng.chance(self.spec.fraction) {
            return fresh;
        }
        self.corrupted += 1;
        match self.rng.index(3) {
            0 => 0,                                  // zeroed: the report reads idle
            1 => current,                            // stuck: the old value repeats
            _ => fresh.saturating_mul(SCALE_FACTOR), // scaled: wrapped/misread counter
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_noop() {
        assert!(CorruptSpec::default().is_noop());
        assert!(!CorruptSpec::new(0.1).is_noop());
    }

    #[test]
    fn validation_rejects_out_of_range() {
        assert!(CorruptSpec::new(0.0).validate().is_ok());
        assert!(CorruptSpec::new(1.0).validate().is_ok());
        assert!(CorruptSpec::new(-0.1).validate().is_err());
        assert!(CorruptSpec::new(1.5).validate().is_err());
        assert!(CorruptSpec::new(f64::NAN).validate().is_err());
    }

    #[test]
    fn zero_fraction_passes_reports_through() {
        let mut c = Corruptor::new(CorruptSpec::new(0.0), SimRng::from_seed(3));
        for v in [0u32, 1, 7, u32::MAX] {
            assert_eq!(c.garble(v, 99), v);
        }
        assert_eq!(c.corrupted(), 0);
    }

    #[test]
    fn full_fraction_garbles_every_report() {
        let mut c = Corruptor::new(CorruptSpec::new(1.0), SimRng::from_seed(5));
        let mut shapes = [false; 3];
        for i in 0..200u32 {
            let fresh = 3 + i % 4;
            let out = c.garble(fresh, 1000);
            // Every output is one of the three failure shapes, never the
            // honest value (fresh is chosen so the shapes are disjoint
            // from it).
            if out == 0 {
                shapes[0] = true;
            } else if out == 1000 {
                shapes[1] = true;
            } else if out == fresh.saturating_mul(SCALE_FACTOR) {
                shapes[2] = true;
            } else {
                panic!("unexpected garbled value {out} for fresh {fresh}");
            }
        }
        assert_eq!(c.corrupted(), 200);
        assert!(
            shapes.iter().all(|&s| s),
            "all three shapes occur: {shapes:?}"
        );
    }

    #[test]
    fn scaled_shape_saturates() {
        let mut c = Corruptor::new(CorruptSpec::new(1.0), SimRng::from_seed(5));
        for _ in 0..64 {
            let out = c.garble(u32::MAX, 0);
            assert!(out == 0 || out == u32::MAX);
        }
    }

    #[test]
    fn labels_name_the_fraction() {
        assert_eq!(CorruptSpec::new(0.25).label(), "corrupt=0.25");
    }
}
