//! The update-on-access model: per-client snapshots (§3.2).

use staleload_cluster::Cluster;
use staleload_policies::{InfoAge, LoadView};
use staleload_sim::SimRng;

use crate::InfoModel;

/// Update-on-access information: when a client's request reaches a server,
/// the reply carries a snapshot of the whole system's loads; the client's
/// *next* request decides on that snapshot.
///
/// The age of a client's information therefore equals its inter-request
/// time, which the client knows exactly (it can timestamp its own
/// requests) — so views report the *actual* age. The snapshot taken at
/// placement time includes the job just placed.
///
/// Clients start with an "empty system" snapshot dated time 0, matching a
/// cold start in which nothing has been learned yet.
#[derive(Debug, Clone)]
pub struct UpdateOnAccess {
    /// Flattened `clients × n` snapshot matrix.
    snapshots: Vec<u32>,
    taken_at: Vec<f64>,
    servers: usize,
}

thread_local! {
    /// The snapshot matrix is the largest per-trial allocation in the
    /// update-on-access sweeps (clients × servers `u32`s); recycle it
    /// across trials on one worker. `new()` clears and re-zeroes, so
    /// recycled state never leaks between trials.
    static SNAPSHOT_POOL: std::cell::RefCell<Vec<(Vec<u32>, Vec<f64>)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

const SNAPSHOT_POOL_DEPTH: usize = 4;

impl Drop for UpdateOnAccess {
    fn drop(&mut self) {
        let _ = SNAPSHOT_POOL.try_with(|pool| {
            let mut pool = pool.borrow_mut();
            if pool.len() < SNAPSHOT_POOL_DEPTH {
                pool.push((
                    std::mem::take(&mut self.snapshots),
                    std::mem::take(&mut self.taken_at),
                ));
            }
        });
    }
}

impl UpdateOnAccess {
    /// Creates the model for `clients` clients observing `servers` servers.
    ///
    /// # Panics
    ///
    /// Panics if `clients == 0` or `servers == 0`.
    pub fn new(clients: usize, servers: usize) -> Self {
        assert!(clients > 0, "need at least one client");
        assert!(servers > 0, "need at least one server");
        if let Some((mut snapshots, mut taken_at)) =
            SNAPSHOT_POOL.with(|pool| pool.borrow_mut().pop())
        {
            snapshots.clear();
            snapshots.resize(clients * servers, 0);
            taken_at.clear();
            taken_at.resize(clients, 0.0);
            return Self {
                snapshots,
                taken_at,
                servers,
            };
        }
        Self {
            snapshots: vec![0; clients * servers],
            taken_at: vec![0.0; clients],
            servers,
        }
    }

    /// Number of clients.
    pub fn clients(&self) -> usize {
        self.taken_at.len()
    }

    fn snapshot(&self, client: usize) -> &[u32] {
        &self.snapshots[client * self.servers..(client + 1) * self.servers]
    }
}

impl InfoModel for UpdateOnAccess {
    fn next_event(&self) -> Option<f64> {
        None
    }

    fn on_event(&mut self, _now: f64, _cluster: &Cluster) {}

    fn view<'a>(
        &'a mut self,
        now: f64,
        client: usize,
        _cluster: &'a mut Cluster,
        _rng: &mut SimRng,
    ) -> LoadView<'a> {
        let age = (now - self.taken_at[client]).max(0.0);
        LoadView {
            loads: self.snapshot(client),
            info: InfoAge::Aged { age },
            ages: None,
        }
    }

    fn after_placement(&mut self, now: f64, client: usize, cluster: &Cluster) {
        let dst = &mut self.snapshots[client * self.servers..(client + 1) * self.servers];
        dst.copy_from_slice(cluster.loads());
        self.taken_at[client] = now;
    }

    fn required_history_window(&self) -> Option<f64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use staleload_cluster::Job;

    #[test]
    fn clients_have_independent_views() {
        let mut rng = SimRng::from_seed(1);
        let mut cluster = Cluster::new(2);
        let mut model = UpdateOnAccess::new(2, 2);

        // Client 0 places a job at t = 1 and snapshots the result.
        cluster.enqueue(0, Job::new(0, 1.0, 100.0), 1.0);
        model.after_placement(1.0, 0, &cluster);

        // Client 0 sees its snapshot; client 1 still sees the cold start.
        let v0 = model.view(4.0, 0, &mut cluster, &mut rng);
        assert_eq!(v0.loads, &[1, 0]);
        assert_eq!(v0.info, InfoAge::Aged { age: 3.0 });
        let v1 = model.view(4.0, 1, &mut cluster, &mut rng);
        assert_eq!(v1.loads, &[0, 0]);
        assert_eq!(v1.info, InfoAge::Aged { age: 4.0 });
    }

    #[test]
    fn snapshot_includes_own_job() {
        let mut rng = SimRng::from_seed(2);
        let mut cluster = Cluster::new(1);
        let mut model = UpdateOnAccess::new(1, 1);
        cluster.enqueue(0, Job::new(0, 2.0, 5.0), 2.0);
        model.after_placement(2.0, 0, &cluster);
        let v = model.view(2.5, 0, &mut cluster, &mut rng);
        assert_eq!(v.loads, &[1]);
        assert_eq!(v.info, InfoAge::Aged { age: 0.5 });
    }

    #[test]
    fn age_resets_on_each_placement() {
        let mut rng = SimRng::from_seed(3);
        let mut cluster = Cluster::new(1);
        let mut model = UpdateOnAccess::new(1, 1);
        cluster.enqueue(0, Job::new(0, 1.0, 100.0), 1.0);
        model.after_placement(1.0, 0, &cluster);
        cluster.enqueue(0, Job::new(1, 6.0, 100.0), 6.0);
        model.after_placement(6.0, 0, &cluster);
        let v = model.view(7.0, 0, &mut cluster, &mut rng);
        assert_eq!(v.info, InfoAge::Aged { age: 1.0 });
        assert_eq!(v.loads, &[2]);
    }
}
