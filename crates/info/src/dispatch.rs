//! Enum-based static dispatch for the simulation hot loop.
//!
//! [`crate::InfoSpec::build`] returns a `Box<dyn InfoModel>`; the engine
//! consults the model several times per arrival (`next_event`, `view`,
//! `after_placement`), so those virtual calls sit directly on the hot
//! path. The model set is closed — the five variants below — so
//! [`InfoDispatch`] gives the engine a concrete type to monomorphize
//! against. Lossy update channels don't change the variant: a lossy
//! periodic board is still a [`PeriodicBoard`].
//!
//! Behavior is bit-identical to the boxed build: both construct the same
//! model values, which draw from the RNG in the same order.

use staleload_sim::SimRng;

use staleload_cluster::Cluster;
use staleload_policies::LoadView;

use crate::{
    ContinuousView, CorruptSpec, EwmaBoard, FreshView, IndividualBoard, InfoModel, InfoSpec,
    LossSpec, MultiHorizonBoard, PeriodicBoard, UpdateOnAccess,
};

/// An [`InfoModel`] with enum (static) dispatch over the closed set of
/// information models.
///
/// Build one with [`InfoDispatch::from_spec`] or
/// [`InfoDispatch::from_spec_lossy`].
#[allow(missing_docs)] // variants mirror InfoSpec, documented there
pub enum InfoDispatch {
    Periodic(PeriodicBoard),
    Continuous(ContinuousView),
    UpdateOnAccess(UpdateOnAccess),
    Individual(IndividualBoard),
    Fresh(FreshView),
    Ewma(EwmaBoard),
    MultiHorizon(MultiHorizonBoard),
}

impl InfoDispatch {
    /// Instantiates the model described by `spec` for `servers` servers
    /// and `clients` clients.
    pub fn from_spec(spec: &InfoSpec, servers: usize, clients: usize) -> Self {
        match *spec {
            InfoSpec::Periodic { period } => Self::Periodic(PeriodicBoard::new(servers, period)),
            InfoSpec::Continuous { delay, knowledge } => {
                Self::Continuous(ContinuousView::new(delay, knowledge))
            }
            InfoSpec::UpdateOnAccess => Self::UpdateOnAccess(UpdateOnAccess::new(clients, servers)),
            InfoSpec::Individual { period } => {
                Self::Individual(IndividualBoard::new(servers, period))
            }
            InfoSpec::Fresh => Self::Fresh(FreshView),
            InfoSpec::Ewma { period, alpha } => Self::Ewma(EwmaBoard::new(servers, period, alpha)),
            InfoSpec::MultiHorizon { period, windows } => {
                Self::MultiHorizon(MultiHorizonBoard::new(servers, period, windows))
            }
        }
    }

    /// Instantiates the model with its board refreshes routed through a
    /// lossy/delayed update channel; `None` for models without an update
    /// channel (same contract as [`InfoSpec::build_lossy`]).
    pub fn from_spec_lossy(
        spec: &InfoSpec,
        servers: usize,
        loss: LossSpec,
        rng: SimRng,
    ) -> Option<Self> {
        match *spec {
            InfoSpec::Periodic { period } => Some(Self::Periodic(PeriodicBoard::with_loss(
                servers, period, loss, rng,
            ))),
            InfoSpec::Individual { period } => Some(Self::Individual(IndividualBoard::with_loss(
                servers, period, loss, rng,
            ))),
            _ => None,
        }
    }

    /// Routes the model's board refreshes through a report corruptor.
    ///
    /// Returns `false` for models without a report channel to corrupt
    /// (same contract as [`InfoSpec::supports_loss`] — the caller should
    /// surface that as a configuration error). `rng` should be forked
    /// from the engine's fault stream, and only when `spec` is not a
    /// noop, so honest configurations stay bit-identical.
    pub fn attach_corruptor(&mut self, spec: CorruptSpec, rng: SimRng) -> bool {
        match self {
            Self::Periodic(board) => {
                board.attach_corruptor(spec, rng);
                true
            }
            Self::Individual(board) => {
                board.attach_corruptor(spec, rng);
                true
            }
            _ => false,
        }
    }

    /// Number of reports garbled by an attached corruptor so far.
    pub fn corrupted_reports(&self) -> u64 {
        match self {
            Self::Periodic(board) => board.corrupted_reports(),
            Self::Individual(board) => board.corrupted_reports(),
            _ => 0,
        }
    }
}

macro_rules! for_each_variant {
    ($self:ident, $m:ident => $body:expr) => {
        match $self {
            InfoDispatch::Periodic($m) => $body,
            InfoDispatch::Continuous($m) => $body,
            InfoDispatch::UpdateOnAccess($m) => $body,
            InfoDispatch::Individual($m) => $body,
            InfoDispatch::Fresh($m) => $body,
            InfoDispatch::Ewma($m) => $body,
            InfoDispatch::MultiHorizon($m) => $body,
        }
    };
}

impl InfoModel for InfoDispatch {
    #[inline]
    fn next_event(&self) -> Option<f64> {
        for_each_variant!(self, m => m.next_event())
    }

    #[inline]
    fn on_event(&mut self, now: f64, cluster: &Cluster) {
        for_each_variant!(self, m => m.on_event(now, cluster))
    }

    #[inline]
    fn view<'a>(
        &'a mut self,
        now: f64,
        client: usize,
        cluster: &'a mut Cluster,
        rng: &mut SimRng,
    ) -> LoadView<'a> {
        for_each_variant!(self, m => m.view(now, client, cluster, rng))
    }

    #[inline]
    fn after_placement(&mut self, now: f64, client: usize, cluster: &Cluster) {
        for_each_variant!(self, m => m.after_placement(now, client, cluster))
    }

    #[inline]
    fn required_history_window(&self) -> Option<f64> {
        for_each_variant!(self, m => m.required_history_window())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AgeKnowledge, DelaySpec};
    use staleload_cluster::Job;

    fn all_specs() -> Vec<InfoSpec> {
        vec![
            InfoSpec::Periodic { period: 5.0 },
            InfoSpec::Continuous {
                delay: DelaySpec::Exponential { mean: 2.0 },
                knowledge: AgeKnowledge::Actual,
            },
            InfoSpec::UpdateOnAccess,
            InfoSpec::Individual { period: 3.0 },
            InfoSpec::Fresh,
            InfoSpec::Ewma {
                period: 2.0,
                alpha: 0.4,
            },
            InfoSpec::MultiHorizon {
                period: 2.0,
                windows: [2.0, 6.0, 14.0],
            },
        ]
    }

    /// The enum-dispatched model must replay the boxed build's view stream
    /// exactly: same loads, same ages, same RNG draw order.
    #[test]
    fn dispatch_matches_boxed_build_bit_for_bit() {
        for spec in all_specs() {
            let servers = 4;
            let mk_cluster = || {
                let mut c = match spec.history_window() {
                    Some(w) => Cluster::with_history(servers, w),
                    None => Cluster::new(servers),
                };
                for i in 0..6u64 {
                    c.enqueue(
                        (i % 4) as usize,
                        Job::new(i, i as f64 * 0.3, 1.0),
                        i as f64 * 0.3,
                    );
                }
                c
            };
            let mut ca = mk_cluster();
            let mut cb = mk_cluster();
            let mut boxed = spec.build(servers, 3);
            let mut dispatch = InfoDispatch::from_spec(&spec, servers, 3);
            let mut rng_a = SimRng::from_seed(11);
            let mut rng_b = SimRng::from_seed(11);
            for step in 0..64u64 {
                let now = 2.0 + step as f64 * 0.7;
                assert_eq!(
                    boxed.next_event(),
                    dispatch.next_event(),
                    "{}",
                    spec.label()
                );
                if let Some(t) = boxed.next_event() {
                    if t <= now {
                        boxed.on_event(t, &ca);
                        dispatch.on_event(t, &cb);
                    }
                }
                let client = (step % 3) as usize;
                {
                    let va = boxed.view(now, client, &mut ca, &mut rng_a);
                    let vb = dispatch.view(now, client, &mut cb, &mut rng_b);
                    assert_eq!(va.loads, vb.loads, "{} at step {step}", spec.label());
                    assert_eq!(va.ages, vb.ages, "{} at step {step}", spec.label());
                }
                boxed.after_placement(now, client, &ca);
                dispatch.after_placement(now, client, &cb);
            }
            assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "{}", spec.label());
        }
    }

    #[test]
    fn lossy_dispatch_builds_only_for_boards() {
        let loss = LossSpec::drop(0.5);
        assert!(InfoDispatch::from_spec_lossy(
            &InfoSpec::Periodic { period: 5.0 },
            4,
            loss,
            SimRng::from_seed(1)
        )
        .is_some());
        assert!(InfoDispatch::from_spec_lossy(
            &InfoSpec::Individual { period: 5.0 },
            4,
            loss,
            SimRng::from_seed(1)
        )
        .is_some());
        assert!(
            InfoDispatch::from_spec_lossy(&InfoSpec::Fresh, 4, loss, SimRng::from_seed(1))
                .is_none()
        );
    }
}
