//! The periodic-update ("bulletin board") model (§3.1).

use staleload_cluster::Cluster;
use staleload_policies::{InfoAge, LoadView};
use staleload_sim::SimRng;

use crate::InfoModel;

/// A bulletin board visible to all arrivals, refreshed with the true server
/// loads every `period` time units.
///
/// Load information is exact at the start of each phase and ages as the
/// phase progresses; the view carries full phase context so LI policies can
/// plan over the whole epoch and cache per-phase work.
///
/// The board starts at time 0 showing an idle cluster (epoch 0) with the
/// first refresh at `period` — i.e. time 0 is itself a phase boundary.
#[derive(Debug, Clone)]
pub struct PeriodicBoard {
    period: f64,
    board: Vec<u32>,
    phase_start: f64,
    epoch: u64,
}

impl PeriodicBoard {
    /// Creates a board for `n` servers refreshed every `period`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is not positive and finite or `n == 0`.
    pub fn new(n: usize, period: f64) -> Self {
        assert!(n > 0, "need at least one server");
        assert!(period.is_finite() && period > 0.0, "period must be positive, got {period}");
        Self { period, board: vec![0; n], phase_start: 0.0, epoch: 0 }
    }

    /// The refresh period `T`.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// The current phase number.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl InfoModel for PeriodicBoard {
    fn next_event(&self) -> Option<f64> {
        Some(self.phase_start + self.period)
    }

    fn on_event(&mut self, now: f64, cluster: &Cluster) {
        self.board.clear();
        self.board.extend_from_slice(cluster.loads());
        self.phase_start = now;
        self.epoch += 1;
    }

    fn view<'a>(
        &'a mut self,
        now: f64,
        _client: usize,
        _cluster: &'a mut Cluster,
        _rng: &mut SimRng,
    ) -> LoadView<'a> {
        LoadView {
            loads: &self.board,
            info: InfoAge::Phase {
                start: self.phase_start,
                length: self.period,
                now,
                epoch: self.epoch,
            },
        }
    }

    fn after_placement(&mut self, _now: f64, _client: usize, _cluster: &Cluster) {}

    fn required_history_window(&self) -> Option<f64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use staleload_cluster::Job;

    #[test]
    fn board_is_stale_within_a_phase() {
        let mut rng = SimRng::from_seed(1);
        let mut cluster = Cluster::new(3);
        let mut board = PeriodicBoard::new(3, 10.0);
        cluster.enqueue(0, Job::new(0, 1.0, 100.0), 1.0);
        cluster.enqueue(0, Job::new(1, 2.0, 100.0), 2.0);
        let view = board.view(3.0, 0, &mut cluster, &mut rng);
        assert_eq!(view.loads, &[0, 0, 0], "phase-start snapshot, not live loads");
    }

    #[test]
    fn refresh_publishes_and_advances_epoch() {
        let mut rng = SimRng::from_seed(1);
        let mut cluster = Cluster::new(2);
        let mut board = PeriodicBoard::new(2, 10.0);
        cluster.enqueue(1, Job::new(0, 5.0, 100.0), 5.0);
        assert_eq!(board.next_event(), Some(10.0));
        board.on_event(10.0, &cluster);
        assert_eq!(board.next_event(), Some(20.0));
        assert_eq!(board.epoch(), 1);
        let view = board.view(10.5, 0, &mut cluster, &mut rng);
        assert_eq!(view.loads, &[0, 1]);
        match view.info {
            InfoAge::Phase { start, length, now, epoch } => {
                assert_eq!(start, 10.0);
                assert_eq!(length, 10.0);
                assert_eq!(now, 10.5);
                assert_eq!(epoch, 1);
            }
            other => panic!("expected phase info, got {other:?}"),
        }
    }
}
