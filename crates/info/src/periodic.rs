//! The periodic-update ("bulletin board") model (§3.1).

use staleload_cluster::Cluster;
use staleload_policies::{InfoAge, LoadView};
use staleload_sim::SimRng;

use crate::corrupt::Corruptor;
use crate::loss::LossChannel;
use crate::{CorruptSpec, InfoModel, LossSpec};

/// A bulletin board visible to all arrivals, refreshed with the true server
/// loads every `period` time units.
///
/// Load information is exact at the start of each phase and ages as the
/// phase progresses; the view carries full phase context so LI policies can
/// plan over the whole epoch and cache per-phase work.
///
/// The board starts at time 0 showing an idle cluster (epoch 0) with the
/// first refresh at `period` — i.e. time 0 is itself a phase boundary.
///
/// # Fault injection
///
/// With a lossy channel ([`PeriodicBoard::with_loss`]) each entry's refresh
/// is independently dropped or delayed, so entries silently keep stale
/// values past the phase boundary; a crashed server's entry is never
/// refreshed while it is down, and neither is a server partitioned away
/// from the board ([`Cluster::is_visible`]). With a corruptor attached
/// ([`PeriodicBoard::attach_corruptor`]) a fraction of refreshes are
/// garbled before they are sent. The view's per-entry [`LoadView::ages`]
/// report the true staleness so an age-aware policy can discount what the
/// phase metadata over-promises (a garbled entry, however, looks fresh —
/// corruption is the one fault age-awareness cannot see).
#[derive(Debug, Clone)]
pub struct PeriodicBoard {
    period: f64,
    board: Vec<u32>,
    /// When each entry's current value was sampled from the cluster.
    entry_times: Vec<f64>,
    /// Scratch buffer for per-entry ages handed out by `view`.
    ages: Vec<f64>,
    phase_start: f64,
    epoch: u64,
    channel: Option<LossChannel>,
    corruptor: Option<Corruptor>,
}

impl PeriodicBoard {
    /// Creates a board for `n` servers refreshed every `period`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is not positive and finite or `n == 0`.
    pub fn new(n: usize, period: f64) -> Self {
        assert!(n > 0, "need at least one server");
        assert!(
            period.is_finite() && period > 0.0,
            "period must be positive, got {period}"
        );
        Self {
            period,
            board: vec![0; n],
            entry_times: vec![0.0; n],
            ages: vec![0.0; n],
            phase_start: 0.0,
            epoch: 0,
            channel: None,
            corruptor: None,
        }
    }

    /// Creates a board whose refreshes traverse a lossy/delayed channel
    /// (see [`LossSpec`]); `rng` should be forked from the engine's fault
    /// stream.
    ///
    /// # Panics
    ///
    /// Panics if `period` is not positive and finite or `n == 0`.
    pub fn with_loss(n: usize, period: f64, loss: LossSpec, rng: SimRng) -> Self {
        let mut board = Self::new(n, period);
        board.channel = Some(LossChannel::new(loss, rng));
        board
    }

    /// Routes subsequent refreshes through a report corruptor (see
    /// [`CorruptSpec`]); `rng` should be forked from the engine's fault
    /// stream, and only when `spec` is not a noop, so honest boards stay
    /// bit-identical.
    pub fn attach_corruptor(&mut self, spec: CorruptSpec, rng: SimRng) {
        self.corruptor = Some(Corruptor::new(spec, rng));
    }

    /// Number of reports garbled by the attached corruptor so far.
    pub fn corrupted_reports(&self) -> u64 {
        self.corruptor.as_ref().map_or(0, Corruptor::corrupted)
    }

    /// The refresh period `T`.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// The current phase number.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// When each entry's current value was sampled.
    pub fn entry_times(&self) -> &[f64] {
        &self.entry_times
    }

    fn land(&mut self, server: usize, value: u32, sampled: f64) {
        // Deliveries can arrive out of order; a landing older than the
        // entry's current value is obsolete and discarded.
        if sampled >= self.entry_times[server] {
            self.board[server] = value;
            self.entry_times[server] = sampled;
        }
    }

    fn next_refresh(&self) -> f64 {
        self.phase_start + self.period
    }
}

impl InfoModel for PeriodicBoard {
    fn next_event(&self) -> Option<f64> {
        let refresh = self.next_refresh();
        match self.channel.as_ref().and_then(LossChannel::next_delivery) {
            Some(t) if t < refresh => Some(t),
            _ => Some(refresh),
        }
    }

    fn on_event(&mut self, now: f64, cluster: &Cluster) {
        // Delayed deliveries fire between refreshes (refresh wins ties;
        // the obsolete-landing check makes the order immaterial).
        let next_refresh = self.next_refresh();
        if let Some(channel) = &mut self.channel {
            if channel.next_delivery().is_some_and(|t| t < next_refresh) {
                let landing = channel.pop_delivery().expect("delivery was peeked");
                self.land(landing.server, landing.value, landing.sampled);
                // Any board mutation starts a new cache epoch for the
                // policies even though the phase itself continues.
                self.epoch += 1;
                return;
            }
        }
        for server in 0..self.board.len() {
            // A crashed server sends no refresh, and a partitioned one's
            // refresh never reaches the board; the entry decays in place.
            if !cluster.is_up(server) || !cluster.is_visible(server) {
                continue;
            }
            let mut value = cluster.load(server);
            if let Some(corruptor) = &mut self.corruptor {
                value = corruptor.garble(value, self.board[server]);
            }
            match &mut self.channel {
                None => {
                    self.board[server] = value;
                    self.entry_times[server] = now;
                }
                Some(channel) => {
                    if let Some(l) = channel.send(now, server, value) {
                        self.land(l.server, l.value, l.sampled);
                    }
                }
            }
        }
        self.phase_start = now;
        self.epoch += 1;
    }

    fn view<'a>(
        &'a mut self,
        now: f64,
        _client: usize,
        _cluster: &'a mut Cluster,
        _rng: &mut SimRng,
    ) -> LoadView<'a> {
        for (age, &at) in self.ages.iter_mut().zip(&self.entry_times) {
            *age = (now - at).max(0.0);
        }
        LoadView {
            loads: &self.board,
            info: InfoAge::Phase {
                start: self.phase_start,
                length: self.period,
                now,
                epoch: self.epoch,
            },
            ages: Some(&self.ages),
        }
    }

    fn after_placement(&mut self, _now: f64, _client: usize, _cluster: &Cluster) {}

    fn required_history_window(&self) -> Option<f64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use staleload_cluster::Job;

    #[test]
    fn board_is_stale_within_a_phase() {
        let mut rng = SimRng::from_seed(1);
        let mut cluster = Cluster::new(3);
        let mut board = PeriodicBoard::new(3, 10.0);
        cluster.enqueue(0, Job::new(0, 1.0, 100.0), 1.0);
        cluster.enqueue(0, Job::new(1, 2.0, 100.0), 2.0);
        let view = board.view(3.0, 0, &mut cluster, &mut rng);
        assert_eq!(
            view.loads,
            &[0, 0, 0],
            "phase-start snapshot, not live loads"
        );
    }

    #[test]
    fn refresh_publishes_and_advances_epoch() {
        let mut rng = SimRng::from_seed(1);
        let mut cluster = Cluster::new(2);
        let mut board = PeriodicBoard::new(2, 10.0);
        cluster.enqueue(1, Job::new(0, 5.0, 100.0), 5.0);
        assert_eq!(board.next_event(), Some(10.0));
        board.on_event(10.0, &cluster);
        assert_eq!(board.next_event(), Some(20.0));
        assert_eq!(board.epoch(), 1);
        let view = board.view(10.5, 0, &mut cluster, &mut rng);
        assert_eq!(view.loads, &[0, 1]);
        match view.info {
            InfoAge::Phase {
                start,
                length,
                now,
                epoch,
            } => {
                assert_eq!(start, 10.0);
                assert_eq!(length, 10.0);
                assert_eq!(now, 10.5);
                assert_eq!(epoch, 1);
            }
            other => panic!("expected phase info, got {other:?}"),
        }
    }

    #[test]
    fn entry_ages_track_refreshes() {
        let mut rng = SimRng::from_seed(1);
        let mut cluster = Cluster::new(2);
        let mut board = PeriodicBoard::new(2, 10.0);
        board.on_event(10.0, &cluster);
        let view = board.view(13.0, 0, &mut cluster, &mut rng);
        let ages = view.ages.expect("boards report per-entry ages");
        assert_eq!(ages, &[3.0, 3.0]);
    }

    #[test]
    fn down_server_entry_goes_stale() {
        let mut rng = SimRng::from_seed(1);
        let mut cluster = Cluster::new(2);
        let mut board = PeriodicBoard::new(2, 10.0);
        cluster.enqueue(0, Job::new(0, 1.0, 100.0), 1.0);
        cluster.enqueue(1, Job::new(1, 1.0, 100.0), 1.0);
        cluster.crash(1, 2.0);
        board.on_event(10.0, &cluster);
        let view = board.view(10.0, 0, &mut cluster, &mut rng);
        assert_eq!(
            view.loads,
            &[1, 0],
            "down server's entry keeps its cold value"
        );
        let ages = view.ages.unwrap();
        assert_eq!(ages[0], 0.0);
        assert_eq!(ages[1], 10.0, "the stale entry's age keeps growing");
    }

    #[test]
    fn full_drop_channel_never_updates() {
        let mut rng = SimRng::from_seed(1);
        let mut cluster = Cluster::new(2);
        let mut board =
            PeriodicBoard::with_loss(2, 10.0, LossSpec::drop(1.0), SimRng::from_seed(7));
        cluster.enqueue(0, Job::new(0, 1.0, 100.0), 1.0);
        board.on_event(10.0, &cluster);
        board.on_event(20.0, &cluster);
        let view = board.view(20.0, 0, &mut cluster, &mut rng);
        assert_eq!(view.loads, &[0, 0], "every refresh was dropped");
        assert_eq!(view.ages.unwrap(), &[20.0, 20.0]);
    }

    #[test]
    fn lossless_channel_matches_plain_board() {
        let mut rng = SimRng::from_seed(1);
        let mut cluster = Cluster::new(3);
        let mut plain = PeriodicBoard::new(3, 5.0);
        let mut lossy = PeriodicBoard::with_loss(3, 5.0, LossSpec::drop(0.0), SimRng::from_seed(9));
        cluster.enqueue(0, Job::new(0, 1.0, 100.0), 1.0);
        cluster.enqueue(2, Job::new(1, 1.5, 100.0), 1.5);
        for t in [5.0, 10.0] {
            plain.on_event(t, &cluster);
            lossy.on_event(t, &cluster);
        }
        let a = plain.view(11.0, 0, &mut cluster, &mut rng).loads.to_vec();
        let b = lossy.view(11.0, 0, &mut cluster, &mut rng).loads.to_vec();
        assert_eq!(a, b);
    }

    #[test]
    fn delayed_refresh_lands_later_with_sample_age() {
        let mut rng = SimRng::from_seed(1);
        let mut cluster = Cluster::new(1);
        let mut board =
            PeriodicBoard::with_loss(1, 10.0, LossSpec::delay(2.0), SimRng::from_seed(3));
        cluster.enqueue(0, Job::new(0, 1.0, 100.0), 1.0);
        // The refresh at t=10 samples load 1 but is still in flight.
        board.on_event(10.0, &cluster);
        assert_eq!(board.view(10.0, 0, &mut cluster, &mut rng).loads, &[0]);
        // Drive events until the delivery lands (before the next refresh
        // or after — either way the value eventually appears).
        let mut guard = 0;
        while board.view(0.0, 0, &mut cluster, &mut rng).loads[0] == 0 {
            let t = board.next_event().unwrap();
            board.on_event(t, &cluster);
            guard += 1;
            assert!(guard < 100, "delivery must land eventually");
        }
        // The entry's age baseline is a refresh instant (a multiple of the
        // period — whichever in-flight sample landed first), never the
        // landing time itself.
        let sampled = board.entry_times()[0];
        assert!(
            sampled >= 10.0 && sampled % 10.0 == 0.0,
            "sample time {sampled}"
        );
    }
}
