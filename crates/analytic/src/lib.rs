//! Closed-form queueing results used to validate the simulator.
//!
//! The reproduction leans on three analytic anchors (see
//! `tests/queueing_theory.rs` at the workspace root):
//!
//! * random splitting of a Poisson stream over `n` unit-rate servers makes
//!   each an **M/M/1** queue ⇒ [`mm1_response`];
//! * with a general service distribution the **Pollaczek–Khinchine**
//!   formula gives the M/G/1 mean response ⇒ [`mg1_response`];
//! * a fresh-information least-loaded dispatcher is sandwiched between the
//!   **M/M/n** central queue (better: no server idles while work waits)
//!   and M/M/1 ⇒ [`mmn_response`] via [`erlang_c`].
//!
//! All formulas use the paper's units: service rate 1 per server, `λ` the
//! per-server load, time in mean service times.
//!
//! # Example
//!
//! ```
//! use staleload_analytic::{mm1_response, mmn_response};
//!
//! // At 90% load a single queue averages 10 service times...
//! assert!((mm1_response(0.9) - 10.0).abs() < 1e-12);
//! // ...while a 100-server central queue barely queues at all.
//! let r = mmn_response(100, 0.9);
//! assert!(r < 1.1, "{r}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fluid;
mod ode;

pub use fluid::{
    supermarket_equilibrium, supermarket_mean_response, try_supermarket_equilibrium,
    try_supermarket_mean_response, SupermarketFluid,
};
pub use ode::{rk4_integrate, JiqFluid};

use staleload_sim::Dist;

/// Error from an analytic model handed out-of-range parameters.
///
/// The panicking entry points (kept for direct library use and doctests)
/// delegate to `try_*` forms returning this type, so config-reachable
/// callers can surface a [`ConfigError`]-style message instead of
/// aborting a sweep (ISSUE 9 satellite; matches the panic-hygiene lint's
/// intent).
///
/// [`ConfigError`]: https://docs.rs/staleload-core
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalyticError {
    what: String,
}

impl AnalyticError {
    pub(crate) fn new(what: impl Into<String>) -> Self {
        Self { what: what.into() }
    }
}

impl std::fmt::Display for AnalyticError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid analytic-model parameters: {}", self.what)
    }
}

impl std::error::Error for AnalyticError {}

fn check_load(lambda: f64) {
    assert!(
        lambda > 0.0 && lambda < 1.0,
        "per-server load must be in (0, 1) for a stable queue, got {lambda}"
    );
}

/// Mean response time of an M/M/1 queue at load `λ`: `1/(1−λ)`.
///
/// # Panics
///
/// Panics if `λ ∉ (0, 1)`.
pub fn mm1_response(lambda: f64) -> f64 {
    check_load(lambda);
    1.0 / (1.0 - lambda)
}

/// Mean number in system of an M/M/1 queue at load `λ`: `λ/(1−λ)`
/// (Little's law against [`mm1_response`]).
///
/// # Panics
///
/// Panics if `λ ∉ (0, 1)`.
pub fn mm1_number_in_system(lambda: f64) -> f64 {
    check_load(lambda);
    lambda / (1.0 - lambda)
}

/// Mean response time of an M/G/1 queue (Pollaczek–Khinchine):
/// `E[S] + λ·E[S²] / (2(1−λ))` with `E[S]` the mean service time.
///
/// `λ` is the load (arrival rate × mean service time).
///
/// # Panics
///
/// Panics if `λ ∉ (0, 1)`.
pub fn mg1_response(lambda: f64, service: &Dist) -> f64 {
    check_load(lambda);
    let mean = service.mean();
    let second_moment = service.variance() + mean * mean;
    let arrival_rate = lambda / mean;
    mean + arrival_rate * second_moment / (2.0 * (1.0 - lambda))
}

/// Mean response time of an M/D/1 queue: `1 + λ/(2(1−λ))` (unit service).
///
/// # Panics
///
/// Panics if `λ ∉ (0, 1)`.
pub fn md1_response(lambda: f64) -> f64 {
    check_load(lambda);
    1.0 + lambda / (2.0 * (1.0 - lambda))
}

/// Erlang-B blocking probability for `n` servers offered `a = λ·n` Erlangs.
///
/// Computed with the numerically stable recurrence
/// `B(0) = 1; B(k) = a·B(k−1) / (k + a·B(k−1))`.
///
/// # Panics
///
/// Panics if `n == 0` or `offered_load` is not positive and finite.
pub fn erlang_b(n: usize, offered_load: f64) -> f64 {
    assert!(n > 0, "need at least one server");
    assert!(
        offered_load.is_finite() && offered_load > 0.0,
        "offered load must be positive, got {offered_load}"
    );
    let a = offered_load;
    let mut b = 1.0;
    for k in 1..=n {
        b = a * b / (k as f64 + a * b);
    }
    b
}

/// Erlang-C probability that an arrival must wait in an M/M/n queue with
/// per-server load `λ` (offered load `a = λ·n`):
/// `C = B / (1 − λ·(1 − B))` with `B` the Erlang-B probability.
///
/// # Panics
///
/// Panics if `n == 0` or `λ ∉ (0, 1)`.
pub fn erlang_c(n: usize, lambda: f64) -> f64 {
    check_load(lambda);
    let b = erlang_b(n, lambda * n as f64);
    b / (1.0 - lambda * (1.0 - b))
}

/// Mean response time of an M/M/n central queue at per-server load `λ`
/// (unit service rate): `1 + C / (n(1−λ))` with `C` the Erlang-C waiting
/// probability.
///
/// This is a *lower bound* for any immediate-dispatch policy over `n`
/// separate queues (the central queue never idles a server while a job
/// waits), which makes it the reference for fresh-information greedy.
///
/// # Panics
///
/// Panics if `n == 0` or `λ ∉ (0, 1)`.
pub fn mmn_response(n: usize, lambda: f64) -> f64 {
    let c = erlang_c(n, lambda);
    1.0 + c / (n as f64 * (1.0 - lambda))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm1_textbook_values() {
        assert!((mm1_response(0.5) - 2.0).abs() < 1e-12);
        assert!((mm1_response(0.9) - 10.0).abs() < 1e-12);
        assert!((mm1_number_in_system(0.5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mg1_reduces_to_mm1_for_exponential() {
        let exp = Dist::exponential(1.0);
        for lambda in [0.3, 0.5, 0.7, 0.9] {
            assert!((mg1_response(lambda, &exp) - mm1_response(lambda)).abs() < 1e-12);
        }
    }

    #[test]
    fn mg1_reduces_to_md1_for_constant() {
        let det = Dist::constant(1.0);
        for lambda in [0.3, 0.5, 0.9] {
            assert!((mg1_response(lambda, &det) - md1_response(lambda)).abs() < 1e-12);
        }
    }

    #[test]
    fn mg1_grows_with_service_variance() {
        let lambda = 0.7;
        let det = mg1_response(lambda, &Dist::constant(1.0));
        let exp = mg1_response(lambda, &Dist::exponential(1.0));
        let bp = mg1_response(
            lambda,
            &Dist::bounded_pareto_with_mean(1.1, 100.0, 1.0).unwrap(),
        );
        assert!(det < exp && exp < bp, "{det} {exp} {bp}");
    }

    #[test]
    fn erlang_b_textbook_value() {
        // Classic: 10 servers, 5 Erlangs -> B ≈ 0.018.
        let b = erlang_b(10, 5.0);
        assert!((b - 0.018).abs() < 0.001, "{b}");
        // Single server: B = a/(1+a).
        assert!((erlang_b(1, 2.0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn erlang_c_single_server_is_load() {
        // For n = 1, the waiting probability is λ.
        for lambda in [0.2, 0.5, 0.9] {
            assert!((erlang_c(1, lambda) - lambda).abs() < 1e-12);
        }
    }

    #[test]
    fn mmn_single_server_is_mm1() {
        for lambda in [0.3, 0.6, 0.9] {
            assert!((mmn_response(1, lambda) - mm1_response(lambda)).abs() < 1e-9);
        }
    }

    #[test]
    fn pooling_helps() {
        // More servers at the same per-server load ⇒ shorter responses.
        let mut prev = f64::INFINITY;
        for n in [1, 2, 10, 100] {
            let r = mmn_response(n, 0.9);
            assert!(r < prev, "n={n}: {r} !< {prev}");
            prev = r;
        }
        assert!(mmn_response(100, 0.9) < 1.1);
    }

    #[test]
    fn erlang_probabilities_are_probabilities() {
        for n in [1usize, 5, 50, 500] {
            for lambda in [0.1, 0.5, 0.95] {
                let b = erlang_b(n, lambda * n as f64);
                let c = erlang_c(n, lambda);
                assert!((0.0..=1.0).contains(&b));
                assert!((0.0..=1.0).contains(&c));
                assert!(c >= b, "C >= B must hold: {c} vs {b}");
            }
        }
    }
}
