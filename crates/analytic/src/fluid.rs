//! The supermarket-model fluid limit (Mitzenmacher).
//!
//! The paper builds on Mitzenmacher's analysis of the `d`-choice
//! ("k-subset") system, whose fluid limit as `n → ∞` is the coupled ODE
//! over tail fractions `s_i(t)` (share of servers with queue length ≥ i):
//!
//! `ds_i/dt = λ·(s_(i-1)^d − s_i^d) − (s_i − s_(i+1))`, with `s_0 = 1`.
//!
//! Its fixed point is the famous doubly-exponential tail
//! `s_i = λ^((d^i − 1)/(d − 1))`, and the mean response time follows from
//! Little's law: `T = Σ_(i≥1) s_i / λ`. With `d = 1` this collapses to the
//! M/M/1 geometric tail.
//!
//! These formulas apply to the *fresh-information* system (update delay
//! → 0), giving the analytic anchor for the left edge of the paper's
//! figures; the simulator must (and does — see
//! `tests/fluid_validation.rs`) agree there.

use crate::ode::rk4_integrate;
use crate::AnalyticError;

/// Equilibrium tail fractions `s_1..=s_max_len` of the `d`-choice fluid
/// limit at per-server load `λ`.
///
/// # Panics
///
/// Panics if `d == 0` or `λ ∉ (0, 1)`.
///
/// # Example
///
/// ```
/// use staleload_analytic::supermarket_equilibrium;
///
/// let tail = supermarket_equilibrium(2, 0.9, 16);
/// // Doubly exponential: s_1 = 0.9, s_2 = 0.9^3, s_3 = 0.9^7 …
/// assert!((tail[0] - 0.9f64).abs() < 1e-12);
/// assert!((tail[1] - 0.9f64.powi(3)).abs() < 1e-12);
/// assert!((tail[2] - 0.9f64.powi(7)).abs() < 1e-12);
/// ```
pub fn supermarket_equilibrium(d: usize, lambda: f64, max_len: usize) -> Vec<f64> {
    match try_supermarket_equilibrium(d, lambda, max_len) {
        Ok(tail) => tail,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible form of [`supermarket_equilibrium`] for config-reachable
/// callers (ISSUE 9 satellite): a bad `d`/`λ` surfaces as a typed
/// [`AnalyticError`] a driver can report per point instead of a panic
/// that aborts the sweep.
///
/// # Errors
///
/// Returns [`AnalyticError`] if `d == 0` or `λ ∉ (0, 1)`.
pub fn try_supermarket_equilibrium(
    d: usize,
    lambda: f64,
    max_len: usize,
) -> Result<Vec<f64>, AnalyticError> {
    if d == 0 {
        return Err(AnalyticError::new(
            "supermarket fluid limit needs at least one choice (d ≥ 1)",
        ));
    }
    if !(lambda > 0.0 && lambda < 1.0) {
        return Err(AnalyticError::new(format!(
            "supermarket fluid limit needs a load in (0, 1), got {lambda}"
        )));
    }
    let mut out = Vec::with_capacity(max_len);
    let mut exponent = 1.0; // (d^i − 1)/(d − 1) built incrementally
    for _ in 0..max_len {
        out.push(lambda.powf(exponent));
        exponent = exponent * d as f64 + 1.0;
        if exponent > 1e6 {
            // The tail is already below any representable probability.
            exponent = 1e6;
        }
    }
    Ok(out)
}

/// Mean response time of the `d`-choice fluid limit at load `λ`
/// (`T = Σ s_i / λ` by Little's law; `d = 1` gives `1/(1−λ)`).
///
/// # Panics
///
/// Panics if `d == 0` or `λ ∉ (0, 1)`.
pub fn supermarket_mean_response(d: usize, lambda: f64) -> f64 {
    match try_supermarket_mean_response(d, lambda) {
        Ok(t) => t,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible form of [`supermarket_mean_response`]; see
/// [`try_supermarket_equilibrium`].
///
/// # Errors
///
/// Returns [`AnalyticError`] if `d == 0` or `λ ∉ (0, 1)`.
pub fn try_supermarket_mean_response(d: usize, lambda: f64) -> Result<f64, AnalyticError> {
    let tail = try_supermarket_equilibrium(d, lambda, 512)?;
    let mean_queue: f64 = tail.iter().take_while(|&&s| s > 1e-18).sum();
    Ok(mean_queue / lambda)
}

/// Numerical integrator for the supermarket fluid ODE.
///
/// Evolves the truncated tail vector `s_1..s_L` with classic fourth-order
/// Runge–Kutta. Used to check that the closed-form equilibrium is the
/// attractor (and available for transient analyses, e.g. how fast an empty
/// system fills).
#[derive(Debug, Clone)]
pub struct SupermarketFluid {
    d: usize,
    lambda: f64,
    truncation: usize,
}

impl SupermarketFluid {
    /// Creates the model with tail truncation length `truncation`.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`, `λ ∉ (0, 1)`, or `truncation == 0`.
    pub fn new(d: usize, lambda: f64, truncation: usize) -> Self {
        assert!(d > 0, "need at least one choice");
        assert!(
            lambda > 0.0 && lambda < 1.0,
            "load must be in (0, 1), got {lambda}"
        );
        assert!(truncation > 0, "need a positive truncation length");
        Self {
            d,
            lambda,
            truncation,
        }
    }

    fn derivative(&self, s: &[f64], out: &mut [f64]) {
        let d = self.d as i32;
        for i in 0..s.len() {
            let below = if i == 0 { 1.0 } else { s[i - 1] };
            let above = if i + 1 < s.len() { s[i + 1] } else { 0.0 };
            out[i] = self.lambda * (below.powi(d) - s[i].powi(d)) - (s[i] - above);
        }
    }

    /// Integrates from `initial` (tail fractions `s_1..`) for `t_end` time
    /// with step `dt`, returning the final state. The stepper is the
    /// crate's shared RK4 ([`rk4_integrate`]); tail fractions are
    /// probabilities, so the per-step projection clamps rounding drift
    /// back onto `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `initial.len() != truncation` or `dt <= 0`.
    pub fn integrate(&self, initial: &[f64], t_end: f64, dt: f64) -> Vec<f64> {
        assert_eq!(
            initial.len(),
            self.truncation,
            "state length must match truncation"
        );
        let mut s = initial.to_vec();
        match rk4_integrate(
            |state, out| self.derivative(state, out),
            &mut s,
            t_end,
            dt,
            |state| {
                for x in state.iter_mut() {
                    *x = x.clamp(0.0, 1.0);
                }
            },
        ) {
            Ok(()) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Mean queue length of a state (Σ s_i).
    pub fn mean_queue(state: &[f64]) -> f64 {
        state.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d1_equilibrium_is_geometric() {
        let tail = supermarket_equilibrium(1, 0.5, 10);
        for (i, &s) in tail.iter().enumerate() {
            assert!((s - 0.5f64.powi(i as i32 + 1)).abs() < 1e-12);
        }
        assert!((supermarket_mean_response(1, 0.5) - 2.0).abs() < 1e-9);
        assert!((supermarket_mean_response(1, 0.9) - 10.0).abs() < 1e-6);
    }

    #[test]
    fn d2_tail_is_doubly_exponential() {
        let tail = supermarket_equilibrium(2, 0.9, 8);
        let expect = [1, 3, 7, 15, 31, 63, 127, 255];
        for (s, &e) in tail.iter().zip(&expect) {
            assert!((s - 0.9f64.powi(e)).abs() < 1e-12);
        }
    }

    #[test]
    fn two_choices_collapse_the_response_time() {
        // The power of two choices: at λ = 0.9, T drops from 10 to ~2.6.
        let t1 = supermarket_mean_response(1, 0.9);
        let t2 = supermarket_mean_response(2, 0.9);
        let t3 = supermarket_mean_response(3, 0.9);
        assert!((t1 - 10.0).abs() < 1e-6);
        assert!((t2 - 2.61).abs() < 0.02, "{t2}");
        assert!(t3 < t2 && t2 < t1);
    }

    #[test]
    fn ode_converges_to_equilibrium_from_empty() {
        for d in [1usize, 2, 3] {
            // The d = 1 (M/M/1) relaxation time at λ = 0.9 is ~(1−λ)⁻² = 100,
            // so integrate well past it.
            let model = SupermarketFluid::new(d, 0.9, 64);
            let empty = vec![0.0; 64];
            let state = model.integrate(&empty, 1500.0, 0.02);
            let eq = supermarket_equilibrium(d, 0.9, 64);
            for (i, (&got, &want)) in state.iter().zip(&eq).enumerate() {
                assert!(
                    (got - want).abs() < 5e-3,
                    "d={d}, s_{}: ODE {got} vs closed form {want}",
                    i + 1
                );
            }
        }
    }

    #[test]
    fn equilibrium_is_a_fixed_point_of_the_ode() {
        let model = SupermarketFluid::new(2, 0.8, 32);
        let eq = supermarket_equilibrium(2, 0.8, 32);
        let after = model.integrate(&eq, 50.0, 0.02);
        for (&a, &b) in after.iter().zip(&eq) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn mean_queue_sums_tail() {
        assert!((SupermarketFluid::mean_queue(&[0.5, 0.25]) - 0.75).abs() < 1e-12);
    }
}
