//! A shared classic fourth-order Runge–Kutta integrator and the
//! Join-Idle-Queue fluid-limit system (ISSUE 9).
//!
//! [`rk4_integrate`] is the stepper behind every fluid model in this
//! crate: [`crate::SupermarketFluid`] (the d-choice system the paper
//! builds on) and [`JiqFluid`] (the distributed Join-Idle-Queue system
//! from Mitzenmacher's fluid-limit paper, PAPERS.md). Both serve as
//! analytic anchors for the population-mode engine: a count-vector
//! simulation at n = 10^4…10^6 must land on these ODEs' equilibria.

use crate::AnalyticError;

/// Integrates `dy/dt = f(y)` from `state` for `t_end` time units with
/// fixed step `dt`, using classic RK4.
///
/// After each step `project` is applied to the state — fluid states are
/// vectors of probabilities/tail fractions, and the projection clamps the
/// integrator's rounding drift back onto the feasible set. Pass a no-op
/// closure when no constraint applies.
///
/// # Errors
///
/// Returns [`AnalyticError`] if `dt` or `t_end` is non-positive or
/// non-finite.
pub fn rk4_integrate<F, P>(
    f: F,
    state: &mut [f64],
    t_end: f64,
    dt: f64,
    mut project: P,
) -> Result<(), AnalyticError>
where
    F: Fn(&[f64], &mut [f64]),
    P: FnMut(&mut [f64]),
{
    if !(dt.is_finite() && dt > 0.0) {
        return Err(AnalyticError::new(format!(
            "RK4 needs a positive finite step, got dt = {dt}"
        )));
    }
    if !(t_end.is_finite() && t_end > 0.0) {
        return Err(AnalyticError::new(format!(
            "RK4 needs a positive finite horizon, got t_end = {t_end}"
        )));
    }
    let l = state.len();
    let (mut k1, mut k2, mut k3, mut k4) = (vec![0.0; l], vec![0.0; l], vec![0.0; l], vec![0.0; l]);
    let mut tmp = vec![0.0; l];
    let steps = (t_end / dt).ceil() as usize;
    for _ in 0..steps {
        f(state, &mut k1);
        for i in 0..l {
            tmp[i] = state[i] + 0.5 * dt * k1[i];
        }
        f(&tmp, &mut k2);
        for i in 0..l {
            tmp[i] = state[i] + 0.5 * dt * k2[i];
        }
        f(&tmp, &mut k3);
        for i in 0..l {
            tmp[i] = state[i] + dt * k3[i];
        }
        f(&tmp, &mut k4);
        for i in 0..l {
            state[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
        project(state);
    }
    Ok(())
}

/// The distributed Join-Idle-Queue fluid limit.
///
/// `n` servers are fronted by `n/m` dispatchers; a server that goes idle
/// enqueues itself at a uniformly random dispatcher, and an arrival at a
/// dispatcher pops an idle server if its list is non-empty, else routes
/// blind (uniformly random server). The large-system state is
///
/// * `s_k` — fraction of servers with queue length ≥ k (`k = 1..=L`);
/// * `q_j` — fraction of dispatchers with exactly `j` enqueued idle
///   servers (`j = 0..=J`).
///
/// With per-server load λ and `m` servers per dispatcher, the coupled
/// system is (writing `Λ = λ·m` for a dispatcher's arrival rate and
/// `β = m·(s_1 − s_2)` for its idle-join rate):
///
/// ```text
/// ds_1/dt = λ(1 − q_0) + λ q_0 (1 − s_1) − (s_1 − s_2)
/// ds_k/dt = λ q_0 (s_(k-1) − s_k) − (s_k − s_(k+1))      k ≥ 2
/// dq_0/dt = Λ q_1 − β q_0
/// dq_j/dt = β (q_(j-1) − q_j) + Λ (q_(j+1) − q_j)        1 ≤ j < J
/// dq_J/dt = β q_(J-1) − Λ q_J
/// ```
///
/// The dispatcher side is a birth–death chain fed by servers *becoming*
/// idle (rate `s_1 − s_2` per server) and drained by arrivals. As in the
/// source model, an idle-listed server is taken to still be idle when
/// popped — blind traffic landing on listed servers is a vanishing
/// correction in the fluid regime. Throughput conservation forces
/// `s_1 = λ` at the fixed point, which the tests pin.
#[derive(Debug, Clone)]
pub struct JiqFluid {
    lambda: f64,
    servers_per_dispatcher: f64,
    server_trunc: usize,
    idle_trunc: usize,
}

impl JiqFluid {
    /// Creates the model: per-server load `lambda ∈ (0, 1)`, `m ≥ 1`
    /// servers per dispatcher, server-tail truncation `server_trunc`, and
    /// idle-queue truncation `idle_trunc` (both ≥ 1; `idle_trunc` should
    /// be on the order of `m` — a dispatcher can never hold more than its
    /// share of idle servers).
    ///
    /// # Errors
    ///
    /// Returns [`AnalyticError`] if any parameter is out of range.
    pub fn new(
        lambda: f64,
        servers_per_dispatcher: f64,
        server_trunc: usize,
        idle_trunc: usize,
    ) -> Result<Self, AnalyticError> {
        if !(lambda > 0.0 && lambda < 1.0) {
            return Err(AnalyticError::new(format!(
                "JIQ load must be in (0, 1), got {lambda}"
            )));
        }
        if !(servers_per_dispatcher.is_finite() && servers_per_dispatcher >= 1.0) {
            return Err(AnalyticError::new(format!(
                "servers per dispatcher must be ≥ 1, got {servers_per_dispatcher}"
            )));
        }
        if server_trunc == 0 || idle_trunc == 0 {
            return Err(AnalyticError::new(
                "JIQ truncation lengths must be positive",
            ));
        }
        Ok(Self {
            lambda,
            servers_per_dispatcher,
            server_trunc,
            idle_trunc,
        })
    }

    /// State length: `server_trunc` tail fractions then `idle_trunc + 1`
    /// idle-queue probabilities.
    pub fn state_len(&self) -> usize {
        self.server_trunc + self.idle_trunc + 1
    }

    /// The empty-system initial state: no jobs anywhere, every
    /// dispatcher's idle list empty (servers enqueue only on *becoming*
    /// idle).
    pub fn empty_state(&self) -> Vec<f64> {
        let mut state = vec![0.0; self.state_len()];
        state[self.server_trunc] = 1.0; // q_0 = 1
        state
    }

    fn derivative(&self, state: &[f64], out: &mut [f64]) {
        let l = self.server_trunc;
        let j_max = self.idle_trunc;
        let (s, q) = state.split_at(l);
        let lambda = self.lambda;
        let m = self.servers_per_dispatcher;
        let q0 = q[0];
        let beta = m * (s[0] - s.get(1).copied().unwrap_or(0.0)).max(0.0);
        let big_lambda = lambda * m;
        for k in 0..l {
            let below = if k == 0 { 1.0 } else { s[k - 1] };
            let above = if k + 1 < l { s[k + 1] } else { 0.0 };
            let blind = lambda * q0 * (below - s[k]);
            let listed = if k == 0 { lambda * (1.0 - q0) } else { 0.0 };
            out[k] = listed + blind - (s[k] - above);
        }
        let dq = &mut out[l..];
        for j in 0..=j_max {
            let births = if j == 0 { 0.0 } else { beta * q[j - 1] };
            let deaths_in = if j < j_max {
                big_lambda * q[j + 1]
            } else {
                0.0
            };
            let out_rate =
                (if j < j_max { beta } else { 0.0 }) + (if j > 0 { big_lambda } else { 0.0 });
            dq[j] = births + deaths_in - out_rate * q[j];
        }
    }

    /// Integrates from `state` for `t_end` with step `dt`, clamping both
    /// blocks onto `[0, 1]` after each step.
    ///
    /// # Errors
    ///
    /// Returns [`AnalyticError`] on a state-length mismatch or a bad
    /// step/horizon.
    pub fn integrate(&self, state: &mut [f64], t_end: f64, dt: f64) -> Result<(), AnalyticError> {
        if state.len() != self.state_len() {
            return Err(AnalyticError::new(format!(
                "JIQ state length {} must be server_trunc + idle_trunc + 1 = {}",
                state.len(),
                self.state_len()
            )));
        }
        rk4_integrate(
            |s, out| self.derivative(s, out),
            state,
            t_end,
            dt,
            |s| {
                for x in s.iter_mut() {
                    *x = x.clamp(0.0, 1.0);
                }
            },
        )
    }

    /// Integrates the empty system long enough to reach equilibrium
    /// (relaxation is O(1/(1−λ)²); the horizon scales accordingly).
    ///
    /// # Errors
    ///
    /// Returns [`AnalyticError`] if the horizon computation produces a bad
    /// step (cannot happen for a validated model).
    pub fn equilibrium(&self) -> Result<Vec<f64>, AnalyticError> {
        let mut state = self.empty_state();
        let horizon = 40.0 / (1.0 - self.lambda).powi(2);
        self.integrate(&mut state, horizon, 0.02)?;
        Ok(state)
    }

    /// Mean queue length of a state (Σ s_k over the server block).
    pub fn mean_queue(&self, state: &[f64]) -> f64 {
        state[..self.server_trunc.min(state.len())].iter().sum()
    }

    /// Mean response time of a state by Little's law (`Σ s_k / λ`).
    pub fn mean_response(&self, state: &[f64]) -> f64 {
        self.mean_queue(state) / self.lambda
    }

    /// The idle-queue block `q_0..=q_J` of a state.
    pub fn idle_distribution<'a>(&self, state: &'a [f64]) -> &'a [f64] {
        &state[self.server_trunc..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mm1_response, supermarket_mean_response};

    #[test]
    fn rk4_matches_exponential_decay() {
        // dy/dt = -y from 1.0: y(t) = e^-t, and RK4 at dt = 0.01 should be
        // accurate to ~1e-10.
        let mut y = [1.0];
        rk4_integrate(|s, out| out[0] = -s[0], &mut y, 2.0, 0.01, |_| {}).unwrap();
        assert!((y[0] - (-2.0f64).exp()).abs() < 1e-9, "{}", y[0]);
    }

    #[test]
    fn rk4_rejects_bad_steps() {
        let mut y = [1.0];
        assert!(rk4_integrate(|_, out| out[0] = 0.0, &mut y, 1.0, 0.0, |_| {}).is_err());
        assert!(rk4_integrate(|_, out| out[0] = 0.0, &mut y, 1.0, -0.5, |_| {}).is_err());
        assert!(rk4_integrate(|_, out| out[0] = 0.0, &mut y, f64::NAN, 0.1, |_| {}).is_err());
    }

    #[test]
    fn jiq_validates_parameters() {
        assert!(JiqFluid::new(0.9, 10.0, 32, 16).is_ok());
        assert!(JiqFluid::new(0.0, 10.0, 32, 16).is_err());
        assert!(JiqFluid::new(1.0, 10.0, 32, 16).is_err());
        assert!(JiqFluid::new(0.9, 0.5, 32, 16).is_err());
        assert!(JiqFluid::new(0.9, 10.0, 0, 16).is_err());
        assert!(JiqFluid::new(0.9, 10.0, 32, 0).is_err());
    }

    #[test]
    fn jiq_fixed_point_conserves_throughput() {
        // At equilibrium every accepted job is served: s_1 = λ.
        let model = JiqFluid::new(0.9, 10.0, 48, 24).unwrap();
        let eq = model.equilibrium().unwrap();
        assert!((eq[0] - 0.9).abs() < 5e-3, "s_1 = {} should be λ", eq[0]);
        // The idle-queue block stays a probability distribution.
        let total: f64 = model.idle_distribution(&eq).iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "Σ q_j = {total}");
    }

    #[test]
    fn jiq_beats_power_of_two_beats_random() {
        // The canon ordering at λ = 0.9: JIQ ≈ 1.2 < d-choice 2.6 < M/M/1 10.
        let model = JiqFluid::new(0.9, 10.0, 48, 24).unwrap();
        let eq = model.equilibrium().unwrap();
        let t_jiq = model.mean_response(&eq);
        let t_d2 = supermarket_mean_response(2, 0.9);
        let t_mm1 = mm1_response(0.9);
        assert!(
            t_jiq < t_d2 && t_d2 < t_mm1,
            "JIQ {t_jiq} < d=2 {t_d2} < M/M/1 {t_mm1}"
        );
        assert!(t_jiq < 2.0, "JIQ routes most jobs to idle servers: {t_jiq}");
    }

    #[test]
    fn jiq_low_load_is_nearly_ideal() {
        // At λ = 0.3 idle servers abound; nearly every arrival finds one.
        let model = JiqFluid::new(0.3, 10.0, 32, 16).unwrap();
        let eq = model.equilibrium().unwrap();
        let t = model.mean_response(&eq);
        assert!(t < 1.2, "mean response {t} should approach 1.0");
    }

    #[test]
    fn jiq_state_length_mismatch_is_an_error() {
        let model = JiqFluid::new(0.5, 4.0, 8, 4).unwrap();
        let mut wrong = vec![0.0; 5];
        assert!(model.integrate(&mut wrong, 1.0, 0.1).is_err());
    }
}
