//! A streaming, mergeable quantile sketch with a *pinned* compaction
//! schedule (ISSUE 8).
//!
//! Per-trial response-time distributions must merge across trials and
//! workers **bit-identically**: the worker count of a sweep must never
//! change a reported p99. Classic streaming sketches (KLL, GK) cannot
//! offer that — their compaction timing depends on the order merges
//! happen, so `merge(merge(a,b),c)` and `merge(a,merge(b,c))` hold only
//! up to rank error, not bit equality. [`TailSketch`] instead pins the
//! compacted form to a *canonical function of the input multiset*:
//!
//! * **Exact mode** — below the configured capacity the sketch is the
//!   sorted multiset itself (total-order sorted `Vec<f64>`), and
//!   quantiles are the same type-7 interpolation as [`crate::quantile`],
//!   bit for bit.
//! * **Compacted mode** — the moment the count crosses the capacity
//!   (that is the entire compaction schedule), the multiset collapses
//!   onto a fixed logarithmic grid: bucket `i` covers
//!   `[FLOOR·(1+EPS)^(i-1), FLOOR·(1+EPS)^i)`, so every count vector is
//!   determined by the multiset alone. Bucket-count addition is a
//!   multiset homomorphism, which is what makes `merge` commutative,
//!   associative, and split-invariant *exactly*, not approximately.
//!
//! No running f64 sum is kept (f64 addition is not associative); the
//! only scalars carried across a compaction are the exact `min`, `max`,
//! and `count`, all of which merge associatively. Grid quantiles are
//! accurate to the relative half-width of one bucket
//! ([`TailSketch::RELATIVE_ERROR`], ~0.5%) for values inside the grid
//! span, plus an absolute [`TailSketch::FLOOR`] for values below it.
//!
//! Nothing here reads wall clocks or OS entropy; two processes that feed
//! the same multisets hold the same bits.

/// Relative bucket width of the compacted grid: bucket boundaries are
/// `FLOOR·(1+EPS)^i`. Outside tests it only appears through the pinned
/// literals below (the hot path must not call libm).
#[cfg_attr(not(test), allow(dead_code))]
const EPS: f64 = 0.01;

/// Lowest grid boundary; values at or below it land in the underflow
/// bucket and are reported with absolute (not relative) error ≤ `FLOOR`.
const FLOOR: f64 = 1e-4;

/// Highest grid boundary; values at or above it land in the overflow
/// bucket, whose representative is clamped by the exact `max`.
const CEIL: f64 = 1e6;

/// Interior grid buckets: `ceil(ln(CEIL/FLOOR) / ln(1+EPS))`.
/// `ln(1e10)/ln(1.01) = 2314.06…`, kept as a literal so the array
/// length is a compile-time constant.
const INTERIOR: usize = 2315;

/// `ln(1 + EPS)` as a literal: `f64::ln_1p` is a runtime libm call, and
/// a compacted-mode record is on the engine's per-job hot path. Pinned
/// to exactly `EPS.ln_1p()`'s bits by a test.
const LN_1P_EPS: f64 = 0.009_950_330_853_168_083;

/// `1 / LN_1P_EPS` and `1 / FLOOR` as literals (pinned by tests):
/// [`bucket_index`] multiplies by these instead of dividing, which is
/// measurably cheaper per record. The grid is *defined* by that
/// function, so the (sub-ulp) rounding difference versus division just
/// places a handful of boundary values one bucket over — every
/// determinism and error-bound property is stated against the function
/// itself and is unaffected.
const INV_LN_1P_EPS: f64 = 100.499_170_807_130_53;
const INV_FLOOR: f64 = 1e4;

/// Total buckets: underflow + interior + overflow.
const NBUCKETS: usize = INTERIOR + 2;

/// The sketch body: the exact multiset until the pinned compaction
/// fires, the canonical grid afterwards.
#[derive(Debug, Clone)]
enum State {
    /// Sorted by `f64::total_cmp`, so the representation of a multiset
    /// is unique down to the bit pattern.
    Exact(Vec<f64>),
    /// Dense per-bucket counts over the fixed log grid.
    Compacted(Vec<u64>),
}

/// A deterministic, mergeable quantile sketch (see the module docs).
#[derive(Debug, Clone)]
pub struct TailSketch {
    /// Exact-mode capacity: the compaction fires when `count` crosses it.
    cap: usize,
    state: State,
    count: u64,
    /// Exact smallest recorded value (`+∞` when empty).
    min: f64,
    /// Exact largest recorded value (`-∞` when empty).
    max: f64,
}

/// Bit-level equality: two sketches are equal iff their canonical states
/// match bit for bit (the property the merge-algebra tests pin).
impl PartialEq for TailSketch {
    fn eq(&self, other: &Self) -> bool {
        if self.cap != other.cap
            || self.count != other.count
            || self.min.to_bits() != other.min.to_bits()
            || self.max.to_bits() != other.max.to_bits()
        {
            return false;
        }
        match (&self.state, &other.state) {
            (State::Exact(a), State::Exact(b)) => {
                a.len() == b.len()
                    && a.iter()
                        .zip(b.iter())
                        .all(|(x, y)| x.to_bits() == y.to_bits())
            }
            (State::Compacted(a), State::Compacted(b)) => a == b,
            _ => false,
        }
    }
}

impl TailSketch {
    /// Worst-case relative error of a compacted-mode quantile for values
    /// inside the grid span: half a bucket, `√(1+EPS) − 1`.
    pub const RELATIVE_ERROR: f64 = 0.004_987_562_112_089;

    /// Absolute error floor: values at or below this are underflow.
    pub const FLOOR: f64 = FLOOR;

    /// Default exact-mode capacity used by the simulator configuration.
    pub const DEFAULT_CAP: usize = 4096;

    /// An empty sketch that stays exact until `cap` values are held.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`; configuration layers reject that earlier
    /// with a typed error.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "sketch capacity must be at least 1");
        Self {
            cap,
            state: State::Exact(Vec::new()),
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one value.
    ///
    /// # Panics
    ///
    /// Panics on NaN — a NaN response time is an engine bug, and letting
    /// it into the multiset would poison the canonical ordering.
    pub fn record(&mut self, x: f64) {
        assert!(!x.is_nan(), "cannot record NaN into a quantile sketch");
        self.count += 1;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
        match &mut self.state {
            State::Exact(values) => {
                let at = values.partition_point(|v| v.total_cmp(&x).is_lt());
                values.insert(at, x);
                if values.len() > self.cap {
                    self.compact();
                }
            }
            State::Compacted(buckets) => buckets[bucket_index(x)] += 1,
        }
    }

    /// The pinned compaction: fires exactly when the count crosses the
    /// capacity, collapsing the exact multiset onto the fixed grid. The
    /// result depends only on the multiset, never on arrival order.
    fn compact(&mut self) {
        let State::Exact(values) = &self.state else {
            return;
        };
        let mut buckets = vec![0u64; NBUCKETS];
        for &v in values {
            buckets[bucket_index(v)] += 1;
        }
        self.state = State::Compacted(buckets);
    }

    /// Folds `other` into `self`. Exact while the union fits under the
    /// capacity, canonical grid addition otherwise — in both cases the
    /// result depends only on the union multiset, so merging is
    /// commutative, associative, and split-invariant bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ: sketches from different
    /// configurations have different compaction schedules and must never
    /// be mixed (the experiment layer always merges trials of one
    /// config).
    pub fn merge(&mut self, other: &TailSketch) {
        assert_eq!(
            self.cap, other.cap,
            "cannot merge sketches with different capacities"
        );
        self.count += other.count;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
        let fits_exact = matches!(
            (&self.state, &other.state),
            (State::Exact(_), State::Exact(_))
        ) && self.count <= self.cap as u64;
        if fits_exact {
            let (State::Exact(a), State::Exact(b)) = (&mut self.state, &other.state) else {
                unreachable!("fits_exact checked both states");
            };
            let mut merged = Vec::with_capacity(a.len() + b.len());
            let (mut i, mut j) = (0, 0);
            while i < a.len() && j < b.len() {
                if a[i].total_cmp(&b[j]).is_le() {
                    merged.push(a[i]);
                    i += 1;
                } else {
                    merged.push(b[j]);
                    j += 1;
                }
            }
            merged.extend_from_slice(&a[i..]);
            merged.extend_from_slice(&b[j..]);
            *a = merged;
            return;
        }
        self.compact();
        let State::Compacted(mine) = &mut self.state else {
            unreachable!("compact() always leaves the compacted state");
        };
        match &other.state {
            State::Exact(values) => {
                for &v in values {
                    mine[bucket_index(v)] += 1;
                }
            }
            State::Compacted(theirs) => {
                for (m, t) in mine.iter_mut().zip(theirs.iter()) {
                    *m += *t;
                }
            }
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1). In exact mode this is bit-identical
    /// to [`crate::quantile`] over the sorted values; in compacted mode
    /// it is the representative of the bucket holding the rank-rounded
    /// order statistic, clamped to the exact `[min, max]`, accurate to
    /// [`Self::RELATIVE_ERROR`] (plus [`Self::FLOOR`] absolute for
    /// underflow values). `q = 0` and `q = 1` return the exact extremes.
    ///
    /// # Panics
    ///
    /// Panics if the sketch is empty or `q` is outside `[0, 1]`, exactly
    /// like [`crate::quantile`].
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(self.count > 0, "cannot take a quantile of no data");
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0, 1], got {q}"
        );
        if q == 0.0 {
            return self.min;
        }
        if q == 1.0 {
            return self.max;
        }
        match &self.state {
            State::Exact(values) => crate::quantile(values, q),
            State::Compacted(buckets) => {
                // The type-7 position, rounded to the nearest order
                // statistic (interpolation is meaningless inside a
                // bucket); `round` ties away from zero, deterministic.
                let target = (q * (self.count - 1) as f64).round() as u64;
                let mut seen = 0u64;
                for (i, &c) in buckets.iter().enumerate() {
                    seen += c;
                    if seen > target {
                        return representative(i).clamp(self.min, self.max);
                    }
                }
                // Counts always sum to `count`, so the scan cannot fall
                // through; the max is the safe degenerate answer.
                self.max
            }
        }
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact smallest recorded value (`+∞` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Exact largest recorded value (`-∞` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Exact-mode capacity (the compaction threshold).
    #[must_use]
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// True while the sketch still holds the exact multiset.
    #[must_use]
    pub fn is_exact(&self) -> bool {
        matches!(self.state, State::Exact(_))
    }

    /// The sorted exact values, if still in exact mode (for codecs).
    #[must_use]
    pub fn exact_values(&self) -> Option<&[f64]> {
        match &self.state {
            State::Exact(values) => Some(values),
            State::Compacted(_) => None,
        }
    }

    /// The nonzero `(bucket, count)` pairs, if compacted (for codecs).
    #[must_use]
    pub fn bucket_entries(&self) -> Option<Vec<(usize, u64)>> {
        match &self.state {
            State::Exact(_) => None,
            State::Compacted(buckets) => Some(
                buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c > 0)
                    .map(|(i, &c)| (i, c))
                    .collect(),
            ),
        }
    }

    /// Rebuilds an exact-mode sketch from decoded values (sorted here,
    /// so the result is canonical regardless of the wire order).
    ///
    /// # Errors
    ///
    /// Rejects a zero capacity, more values than the capacity holds, or
    /// NaN values.
    pub fn from_exact_parts(cap: usize, mut values: Vec<f64>) -> Result<Self, String> {
        if cap == 0 {
            return Err("sketch capacity must be at least 1".into());
        }
        if values.len() > cap {
            return Err(format!(
                "exact sketch holds {} values but its capacity is {cap}",
                values.len()
            ));
        }
        if values.iter().any(|v| v.is_nan()) {
            return Err("exact sketch values must not be NaN".into());
        }
        values.sort_by(f64::total_cmp);
        let count = values.len() as u64;
        let (min, max) = match (values.first(), values.last()) {
            (Some(&lo), Some(&hi)) => (lo, hi),
            _ => (f64::INFINITY, f64::NEG_INFINITY),
        };
        Ok(Self {
            cap,
            state: State::Exact(values),
            count,
            min,
            max,
        })
    }

    /// Rebuilds a compacted-mode sketch from decoded parts.
    ///
    /// # Errors
    ///
    /// Rejects a zero capacity, out-of-range bucket indices, counts
    /// that do not sum to `count`, a count at or below the capacity
    /// (such a sketch would still be exact), or an inverted/NaN
    /// `min`/`max` pair.
    pub fn from_bucket_parts(
        cap: usize,
        entries: &[(usize, u64)],
        count: u64,
        min: f64,
        max: f64,
    ) -> Result<Self, String> {
        if cap == 0 {
            return Err("sketch capacity must be at least 1".into());
        }
        if count <= cap as u64 {
            return Err(format!(
                "compacted sketch count {count} does not exceed the capacity {cap}"
            ));
        }
        if min.is_nan() || max.is_nan() || min > max {
            return Err(format!("invalid sketch extremes [{min}, {max}]"));
        }
        let mut buckets = vec![0u64; NBUCKETS];
        let mut total = 0u64;
        for &(i, c) in entries {
            if i >= NBUCKETS {
                return Err(format!("bucket index {i} out of range (< {NBUCKETS})"));
            }
            buckets[i] += c;
            total += c;
        }
        if total != count {
            return Err(format!(
                "bucket counts sum to {total} but the sketch claims {count}"
            ));
        }
        Ok(Self {
            cap,
            state: State::Compacted(buckets),
            count,
            min,
            max,
        })
    }
}

/// The grid bucket holding `x`: 0 is underflow, `NBUCKETS-1` overflow.
fn bucket_index(x: f64) -> usize {
    if x <= FLOOR {
        return 0;
    }
    if x >= CEIL {
        return NBUCKETS - 1;
    }
    let i = ((x * INV_FLOOR).ln() * INV_LN_1P_EPS).floor() as usize + 1;
    i.min(NBUCKETS - 2)
}

/// The reported value for bucket `i`: the geometric midpoint of its
/// bounds, so the relative error is half a bucket each way. Underflow
/// reports the floor, overflow the ceiling; both are clamped by the
/// exact extremes at the call site.
fn representative(i: usize) -> f64 {
    if i == 0 {
        return FLOOR;
    }
    if i >= NBUCKETS - 1 {
        return CEIL;
    }
    FLOOR * ((i as f64 - 0.5) * LN_1P_EPS).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The hot-path literals must hold exactly the bits of the
    /// expressions they stand in for, or bucket boundaries silently
    /// shift between builds.
    #[test]
    fn hot_path_literals_are_exact() {
        assert_eq!(LN_1P_EPS.to_bits(), EPS.ln_1p().to_bits());
        assert_eq!(INV_LN_1P_EPS.to_bits(), (1.0 / LN_1P_EPS).to_bits());
        assert_eq!(INV_FLOOR.to_bits(), (1.0 / FLOOR).to_bits());
    }

    fn filled(cap: usize, values: &[f64]) -> TailSketch {
        let mut s = TailSketch::new(cap);
        for &v in values {
            s.record(v);
        }
        s
    }

    #[test]
    fn exact_mode_matches_stats_quantile_bit_for_bit() {
        let values = [3.25, 0.5, 9.75, 1.125, 4.5, 2.0, 7.375, 0.875];
        let s = filled(64, &values);
        assert!(s.is_exact());
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(
                s.quantile(q).to_bits(),
                crate::quantile(&sorted, q).to_bits(),
                "q = {q}"
            );
        }
    }

    #[test]
    fn compaction_fires_exactly_at_the_capacity() {
        let mut s = TailSketch::new(4);
        for v in [1.0, 2.0, 3.0, 4.0] {
            s.record(v);
            assert!(s.is_exact(), "still within capacity");
        }
        s.record(5.0);
        assert!(!s.is_exact(), "crossing the capacity compacts");
        assert_eq!(s.count(), 5);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn compacted_quantiles_stay_within_the_guarantee() {
        let values: Vec<f64> = (1..=1000).map(|i| i as f64 * 0.01).collect();
        let s = filled(16, &values);
        assert!(!s.is_exact());
        for q in [0.5, 0.9, 0.99, 0.999] {
            let exact = crate::quantile(&values, q);
            let got = s.quantile(q);
            let tol = exact * (2.0 * TailSketch::RELATIVE_ERROR) + TailSketch::FLOOR;
            assert!(
                (got - exact).abs() <= tol,
                "q = {q}: sketch {got} vs exact {exact} (tol {tol})"
            );
        }
        assert_eq!(s.quantile(0.0), 0.01);
        assert_eq!(s.quantile(1.0), 10.0);
    }

    #[test]
    fn record_order_does_not_change_the_bits() {
        let forward: Vec<f64> = (0..300)
            .map(|i| (i as f64 * 0.37).sin().abs() + 0.1)
            .collect();
        let mut reverse = forward.clone();
        reverse.reverse();
        for cap in [8, 512] {
            assert_eq!(filled(cap, &forward), filled(cap, &reverse), "cap {cap}");
        }
    }

    #[test]
    fn merge_of_empty_is_identity() {
        let a = filled(8, &[1.0, 2.0, 3.0]);
        let empty = TailSketch::new(8);
        let mut merged = a.clone();
        merged.merge(&empty);
        assert_eq!(merged, a);
        let mut other_way = empty.clone();
        other_way.merge(&a);
        assert_eq!(other_way, a);
        // The identity also holds once `a` is compacted.
        let a = filled(4, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let empty = TailSketch::new(4);
        let mut merged = a.clone();
        merged.merge(&empty);
        assert_eq!(merged, a);
        let mut other_way = TailSketch::new(4);
        other_way.merge(&a);
        assert_eq!(other_way, a);
    }

    #[test]
    fn merge_commutes_across_mode_boundaries() {
        // a stays exact, b is compacted; the union must be identical
        // bits regardless of the fold direction.
        let a = filled(8, &[0.5, 1.5, 2.5]);
        let b = filled(8, &(0..20).map(|i| 1.0 + i as f64).collect::<Vec<_>>());
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn underflow_and_overflow_report_the_exact_extremes() {
        let mut values = vec![1e-7, 5e-5, 2e7, 3e7];
        values.extend((0..50).map(|i| 1.0 + i as f64 * 0.1));
        let s = filled(8, &values);
        assert!(!s.is_exact());
        assert_eq!(s.quantile(0.0), 1e-7);
        assert_eq!(s.quantile(1.0), 3e7);
        // Interior quantiles are clamped into the observed range.
        for q in [0.001, 0.5, 0.999] {
            let v = s.quantile(q);
            assert!((1e-7..=3e7).contains(&v), "q = {q} gave {v}");
        }
    }

    #[test]
    fn codec_round_trip_is_bit_exact() {
        let exact = filled(32, &[4.0, 1.0, 3.0, 2.0]);
        let values = exact.exact_values().expect("exact mode").to_vec();
        let back = TailSketch::from_exact_parts(32, values).expect("valid parts");
        assert_eq!(back, exact);

        let compacted = filled(8, &(0..100).map(|i| 0.5 + i as f64).collect::<Vec<_>>());
        let entries = compacted.bucket_entries().expect("compacted mode");
        let back = TailSketch::from_bucket_parts(
            8,
            &entries,
            compacted.count(),
            compacted.min(),
            compacted.max(),
        )
        .expect("valid parts");
        assert_eq!(back, compacted);
    }

    #[test]
    fn invalid_decoded_parts_are_rejected() {
        assert!(TailSketch::from_exact_parts(0, vec![]).is_err());
        assert!(TailSketch::from_exact_parts(2, vec![1.0, 2.0, 3.0]).is_err());
        assert!(TailSketch::from_exact_parts(8, vec![f64::NAN]).is_err());
        assert!(TailSketch::from_bucket_parts(8, &[(1, 9)], 9, 2.0, 1.0).is_err());
        assert!(TailSketch::from_bucket_parts(8, &[(NBUCKETS, 9)], 9, 1.0, 2.0).is_err());
        assert!(TailSketch::from_bucket_parts(8, &[(1, 5)], 9, 1.0, 2.0).is_err());
        // A "compacted" sketch that would still fit exactly is malformed.
        assert!(TailSketch::from_bucket_parts(8, &[(1, 3)], 3, 1.0, 2.0).is_err());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_is_rejected() {
        TailSketch::new(8).record(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn empty_quantile_panics() {
        let _ = TailSketch::new(8).quantile(0.5);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = TailSketch::new(0);
    }

    #[test]
    #[should_panic(expected = "different capacities")]
    fn mixed_capacity_merge_panics() {
        let mut a = TailSketch::new(8);
        a.merge(&TailSketch::new(16));
    }
}
