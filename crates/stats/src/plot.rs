//! Minimal SVG line plots for the reproduction harness.
//!
//! The figure binaries write one `.svg` per panel next to the `.csv`, so
//! the reproduced figures can be eyeballed against the paper's. Hand-rolled
//! (the dependency policy allows no plotting crate) but complete: axes,
//! tick labels, legend, optional log-y.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

const WIDTH: f64 = 720.0;
const HEIGHT: f64 = 440.0;
const MARGIN_L: f64 = 64.0;
const MARGIN_R: f64 = 180.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 48.0;

/// A qualitative palette (colorblind-safe Okabe–Ito).
const COLORS: [&str; 8] = [
    "#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9", "#F0E442", "#000000",
];

/// A simple multi-series line plot rendered to SVG.
///
/// # Example
///
/// ```
/// use staleload_stats::LinePlot;
///
/// let mut p = LinePlot::new("Fig. 2", "T", "mean response");
/// p.add_series("Random", vec![(1.0, 10.0), (10.0, 10.0)]);
/// p.add_series("Basic LI", vec![(1.0, 2.5), (10.0, 4.9)]);
/// let svg = p.to_svg();
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.contains("Basic LI"));
/// ```
#[derive(Debug, Clone)]
pub struct LinePlot {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<(String, Vec<(f64, f64)>)>,
    log_y: bool,
}

impl LinePlot {
    /// Creates an empty plot.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            log_y: false,
        }
    }

    /// Adds a named series of `(x, y)` points (sorted by x for sane lines).
    pub fn add_series(
        &mut self,
        label: impl Into<String>,
        mut points: Vec<(f64, f64)>,
    ) -> &mut Self {
        points.sort_by(|a, b| a.0.total_cmp(&b.0));
        self.series.push((label.into(), points));
        self
    }

    /// Switches the y axis to log scale (useful when greedy's herding
    /// dwarfs everything else, as in the paper's Fig. 2a regime).
    pub fn log_y(&mut self, log: bool) -> &mut Self {
        self.log_y = log;
        self
    }

    /// Number of series added so far.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    fn bounds(&self) -> (f64, f64, f64, f64) {
        let mut x_min = f64::INFINITY;
        let mut x_max = f64::NEG_INFINITY;
        let mut y_min = f64::INFINITY;
        let mut y_max = f64::NEG_INFINITY;
        for (_, pts) in &self.series {
            for &(x, y) in pts {
                x_min = x_min.min(x);
                x_max = x_max.max(x);
                y_min = y_min.min(y);
                y_max = y_max.max(y);
            }
        }
        if !x_min.is_finite() {
            return (0.0, 1.0, 0.0, 1.0);
        }
        if self.log_y {
            y_min = y_min.max(1e-9);
            y_max = y_max.max(y_min * 10.0);
        } else {
            y_min = 0.0;
            if y_max <= y_min {
                y_max = 1.0;
            }
        }
        if x_max <= x_min {
            x_max = x_min + 1.0;
        }
        (x_min, x_max, y_min, y_max)
    }

    fn sx(&self, x: f64, x_min: f64, x_max: f64) -> f64 {
        MARGIN_L + (x - x_min) / (x_max - x_min) * (WIDTH - MARGIN_L - MARGIN_R)
    }

    fn sy(&self, y: f64, y_min: f64, y_max: f64) -> f64 {
        let frac = if self.log_y {
            ((y.max(1e-12)).ln() - y_min.ln()) / (y_max.ln() - y_min.ln())
        } else {
            (y - y_min) / (y_max - y_min)
        };
        HEIGHT - MARGIN_B - frac * (HEIGHT - MARGIN_T - MARGIN_B)
    }

    /// Renders the plot as an SVG document.
    pub fn to_svg(&self) -> String {
        let (x_min, x_max, y_min, y_max) = self.bounds();
        let mut svg = String::new();
        let _ = write!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}">"#
        );
        let _ = write!(
            svg,
            r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#
        );
        let _ = write!(
            svg,
            r#"<text x="{}" y="24" font-family="sans-serif" font-size="15" font-weight="bold">{}</text>"#,
            MARGIN_L,
            escape(&self.title)
        );

        // Axes.
        let x0 = MARGIN_L;
        let x1 = WIDTH - MARGIN_R;
        let y0 = HEIGHT - MARGIN_B;
        let y1 = MARGIN_T;
        let _ = write!(
            svg,
            r#"<line x1="{x0}" y1="{y0}" x2="{x1}" y2="{y0}" stroke="black"/><line x1="{x0}" y1="{y0}" x2="{x0}" y2="{y1}" stroke="black"/>"#
        );

        // Ticks: 5 per axis.
        for i in 0..=4 {
            let fx = x_min + (x_max - x_min) * i as f64 / 4.0;
            let px = self.sx(fx, x_min, x_max);
            let _ = write!(
                svg,
                r#"<line x1="{px}" y1="{y0}" x2="{px}" y2="{}" stroke="black"/><text x="{px}" y="{}" font-family="sans-serif" font-size="11" text-anchor="middle">{}</text>"#,
                y0 + 4.0,
                y0 + 18.0,
                tick_label(fx)
            );
            let fy = if self.log_y {
                (y_min.ln() + (y_max.ln() - y_min.ln()) * i as f64 / 4.0).exp()
            } else {
                y_min + (y_max - y_min) * i as f64 / 4.0
            };
            let py = self.sy(fy, y_min, y_max);
            let _ = write!(
                svg,
                r#"<line x1="{}" y1="{py}" x2="{x0}" y2="{py}" stroke="black"/><text x="{}" y="{}" font-family="sans-serif" font-size="11" text-anchor="end">{}</text>"#,
                x0 - 4.0,
                x0 - 8.0,
                py + 4.0,
                tick_label(fy)
            );
        }
        // Axis labels.
        let _ = write!(
            svg,
            r#"<text x="{}" y="{}" font-family="sans-serif" font-size="12" text-anchor="middle">{}</text>"#,
            (x0 + x1) / 2.0,
            HEIGHT - 10.0,
            escape(&self.x_label)
        );
        let _ = write!(
            svg,
            r#"<text x="16" y="{}" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 {})">{}</text>"#,
            (y0 + y1) / 2.0,
            (y0 + y1) / 2.0,
            escape(&self.y_label)
        );

        // Series + legend.
        for (idx, (label, pts)) in self.series.iter().enumerate() {
            let color = COLORS[idx % COLORS.len()];
            let path: Vec<String> = pts
                .iter()
                .map(|&(x, y)| {
                    format!(
                        "{:.1},{:.1}",
                        self.sx(x, x_min, x_max),
                        self.sy(y, y_min, y_max)
                    )
                })
                .collect();
            let _ = write!(
                svg,
                r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1.8"/>"#,
                path.join(" ")
            );
            for &(x, y) in pts {
                let _ = write!(
                    svg,
                    r#"<circle cx="{:.1}" cy="{:.1}" r="2.4" fill="{color}"/>"#,
                    self.sx(x, x_min, x_max),
                    self.sy(y, y_min, y_max)
                );
            }
            let ly = MARGIN_T + 16.0 * idx as f64;
            let _ = write!(
                svg,
                r#"<line x1="{}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="2"/><text x="{}" y="{}" font-family="sans-serif" font-size="11">{}</text>"#,
                x1 + 10.0,
                x1 + 34.0,
                x1 + 40.0,
                ly + 4.0,
                escape(label)
            );
        }
        svg.push_str("</svg>");
        svg
    }

    /// Writes the SVG to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating directories or writing the file.
    pub fn write_svg(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_svg())
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn tick_label(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plot() -> LinePlot {
        let mut p = LinePlot::new("Test <plot>", "T", "response");
        p.add_series("a & b", vec![(0.0, 1.0), (10.0, 5.0)]);
        p.add_series("c", vec![(0.0, 2.0), (5.0, 3.0), (10.0, 2.5)]);
        p
    }

    #[test]
    fn svg_has_structure_and_escaping() {
        let svg = sample_plot().to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("a &amp; b"));
        assert!(svg.contains("Test &lt;plot&gt;"));
    }

    #[test]
    fn points_are_within_canvas() {
        let plot = sample_plot();
        let svg = plot.to_svg();
        // All circle centers are inside the drawing area.
        for part in svg.split("<circle cx=\"").skip(1) {
            let cx: f64 = part.split('"').next().unwrap().parse().unwrap();
            assert!((MARGIN_L..=WIDTH - MARGIN_R).contains(&cx), "{cx}");
        }
    }

    #[test]
    fn log_scale_handles_wide_ranges() {
        let mut p = LinePlot::new("log", "T", "resp");
        p.add_series("wide", vec![(1.0, 1.0), (2.0, 1000.0)]);
        p.log_y(true);
        let svg = p.to_svg();
        assert!(svg.contains("<polyline"));
    }

    #[test]
    fn empty_plot_renders() {
        let p = LinePlot::new("empty", "x", "y");
        let svg = p.to_svg();
        assert!(svg.starts_with("<svg"));
        assert_eq!(p.series_count(), 0);
    }

    #[test]
    fn write_creates_file() {
        let dir = std::env::temp_dir().join("staleload_plot_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/fig.svg");
        sample_plot().write_svg(&path).unwrap();
        assert!(std::fs::read_to_string(&path).unwrap().contains("</svg>"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
