//! Multi-trial experiment statistics and result rendering.
//!
//! The paper's protocol (§5): run every data point at least 10 times with
//! different seeds and plot the mean with a 90% confidence interval; the
//! Bounded-Pareto experiments (§5.5) run ≥ 30 trials and report median,
//! quartiles, and extremes. [`Summary`] computes all of these from a set of
//! per-trial metrics; [`Table`] renders aligned text and CSV for the
//! reproduction harness.
//!
//! # Example
//!
//! ```
//! use staleload_stats::Summary;
//!
//! let trials = [10.0, 11.0, 9.5, 10.5, 10.2, 9.8, 10.1, 9.9, 10.4, 9.6];
//! let s = Summary::from_trials(&trials);
//! assert!((s.mean - 10.1).abs() < 1e-9);
//! assert!(s.ci90 > 0.0 && s.ci90 < 0.5);
//! assert!(s.min <= s.q1 && s.q1 <= s.median && s.median <= s.q3 && s.q3 <= s.max);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod plot;
mod sketch;
mod table;

pub use plot::LinePlot;
pub use sketch::TailSketch;
pub use table::Table;

use serde::{Deserialize, Serialize};

/// Two-sided 90% Student-t critical values (`t_{0.95, df}`) for
/// `df = 1..=30`; larger degrees of freedom fall back to the normal 1.645.
const T_95: [f64; 30] = [
    6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812, 1.796, 1.782, 1.771,
    1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725, 1.721, 1.717, 1.714, 1.711, 1.708, 1.706,
    1.703, 1.701, 1.699, 1.697,
];

/// The two-sided 90% Student-t critical value for `df` degrees of freedom.
///
/// # Panics
///
/// Panics if `df == 0`.
pub fn t_critical_90(df: usize) -> f64 {
    assert!(df > 0, "degrees of freedom must be positive");
    T_95.get(df - 1).copied().unwrap_or(1.645)
}

/// The `q`-quantile (0 ≤ q ≤ 1) of `sorted` using linear interpolation
/// between order statistics (the common "type 7" definition).
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `[0, 1]`.
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "cannot take a quantile of no data");
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile must be in [0, 1], got {q}"
    );
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Summary statistics over the per-trial metrics of one experiment point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of trials.
    pub trials: usize,
    /// Mean of the per-trial metrics.
    pub mean: f64,
    /// Sample standard deviation.
    pub stddev: f64,
    /// Half-width of the 90% confidence interval on the mean
    /// (`t_{0.95, n-1}·s/√n`; 0 for a single trial).
    pub ci90: f64,
    /// Smallest trial value.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Largest trial value.
    pub max: f64,
}

impl Summary {
    /// Computes a summary from per-trial metrics.
    ///
    /// # Panics
    ///
    /// Panics if `trials` is empty or contains NaN.
    pub fn from_trials(trials: &[f64]) -> Self {
        assert!(!trials.is_empty(), "need at least one trial");
        assert!(
            trials.iter().all(|x| !x.is_nan()),
            "trial metrics must not be NaN"
        );
        let n = trials.len();
        let mean = trials.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            trials.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let stddev = var.sqrt();
        let ci90 = if n > 1 {
            t_critical_90(n - 1) * stddev / (n as f64).sqrt()
        } else {
            0.0
        };
        let mut sorted = trials.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Self {
            trials: n,
            mean,
            stddev,
            ci90,
            min: sorted[0],
            q1: quantile(&sorted, 0.25),
            median: quantile(&sorted, 0.5),
            q3: quantile(&sorted, 0.75),
            max: sorted[n - 1],
        }
    }

    /// `mean ± ci90` formatted for tables.
    pub fn mean_ci(&self) -> String {
        format!("{:.3} ±{:.3}", self.mean, self.ci90)
    }
}

/// Relative difference `(a - b) / b`, the "X% faster/slower" measure used
/// when comparing policies in `EXPERIMENTS.md`.
pub fn relative_difference(a: f64, b: f64) -> f64 {
    (a - b) / b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_table_is_decreasing_toward_normal() {
        let mut prev = f64::INFINITY;
        for df in 1..=40 {
            let t = t_critical_90(df);
            assert!(t <= prev);
            prev = t;
        }
        assert_eq!(t_critical_90(1000), 1.645);
    }

    #[test]
    fn quantile_interpolates() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&data, 0.0), 1.0);
        assert_eq!(quantile(&data, 1.0), 4.0);
        assert!((quantile(&data, 0.5) - 2.5).abs() < 1e-12);
        assert!((quantile(&data, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn summary_of_constant_data() {
        let s = Summary::from_trials(&[5.0; 10]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.ci90, 0.0);
        assert_eq!(s.median, 5.0);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn single_trial_has_no_interval() {
        let s = Summary::from_trials(&[3.0]);
        assert_eq!(s.trials, 1);
        assert_eq!(s.ci90, 0.0);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn ci_matches_hand_computation() {
        // n = 4, values 1..4: mean 2.5, s = sqrt(5/3), t_{0.95,3} = 2.353.
        let s = Summary::from_trials(&[1.0, 2.0, 3.0, 4.0]);
        let expect = 2.353 * (5.0f64 / 3.0).sqrt() / 2.0;
        assert!((s.ci90 - expect).abs() < 1e-9, "{} vs {expect}", s.ci90);
    }

    #[test]
    fn ci_shrinks_with_more_trials() {
        let few = Summary::from_trials(&[1.0, 2.0, 3.0]);
        let many: Vec<f64> = (0..30).map(|i| 1.0 + (i % 3) as f64).collect();
        let many = Summary::from_trials(&many);
        assert!(many.ci90 < few.ci90);
    }

    #[test]
    fn order_statistics_are_ordered() {
        let s = Summary::from_trials(&[9.0, 1.0, 5.0, 3.0, 7.0]);
        assert!(s.min <= s.q1);
        assert!(s.q1 <= s.median);
        assert!(s.median <= s.q3);
        assert!(s.q3 <= s.max);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.median, 5.0);
    }

    #[test]
    fn relative_difference_signs() {
        assert!((relative_difference(12.0, 10.0) - 0.2).abs() < 1e-12);
        assert!((relative_difference(8.0, 10.0) + 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_trials_are_rejected() {
        let _ = Summary::from_trials(&[1.0, f64::NAN]);
    }
}
