//! Aligned-text and CSV result tables.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple column-aligned result table that can also be written as CSV.
///
/// The reproduction harness prints one table per figure panel, with the
/// x-axis (usually the update delay `T`) in the first column and one column
/// per policy.
///
/// # Example
///
/// ```
/// use staleload_stats::Table;
///
/// let mut t = Table::new(vec!["T".into(), "Random".into(), "Basic LI".into()]);
/// t.push_row(vec!["1".into(), "9.98".into(), "2.71".into()]);
/// let text = t.render();
/// assert!(text.contains("Basic LI"));
/// assert!(t.to_csv().starts_with("T,Random,Basic LI\n"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(headers: Vec<String>) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        Self {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |cells: &[String], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = w);
            }
            out.push('\n');
        };
        write_row(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(row, &mut out);
        }
        out
    }

    /// Serializes the table as CSV (RFC-4180-style quoting for cells that
    /// need it).
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let write_row = |cells: &[String], out: &mut String| {
            let line: Vec<String> = cells.iter().map(|c| quote(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        write_row(&self.headers, &mut out);
        for row in &self.rows {
            write_row(row, &mut out);
        }
        out
    }

    /// Writes the CSV form to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating directories or writing the file.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["x".into(), "value".into()]);
        t.push_row(vec!["1".into(), "10".into()]);
        t.push_row(vec!["100".into(), "2".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows have equal width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.push_row(vec!["1,5".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"1,5\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a".into()]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn write_csv_creates_dirs() {
        let dir = std::env::temp_dir().join("staleload_stats_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.csv");
        let mut t = Table::new(vec!["a".into()]);
        t.push_row(vec!["1".into()]);
        t.write_csv(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "a\n1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
