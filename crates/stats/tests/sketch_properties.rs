//! Property tests for the mergeable quantile sketch (ISSUE 8):
//!
//! * **Differential suite** — sketch quantiles vs the exact
//!   `staleload_stats::quantile` over sorted buffers, across
//!   uniform-, Pareto-, and MMPP-shaped samples, with the error bounded
//!   by the sketch's published guarantee at p50/p99/p999.
//! * **Merge algebra** — `merge(a,b) == merge(b,a)`,
//!   `merge(merge(a,b),c) == merge(a,merge(b,c))`, and merge-of-splits
//!   equals the whole-stream sketch, all at bit level. This is exactly
//!   the property the worker pool relies on: however a sweep's trials
//!   are distributed over workers, the folded sketch is the same bits.

// Proptest closures sit outside #[test] fns, so clippy's
// allow-unwrap-in-tests does not reach them; the whole file is a test.
#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use staleload_stats::{quantile, TailSketch};

/// Uniform-shaped positive samples.
fn arb_uniform(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..50.0, 1..max_len)
}

/// Pareto-shaped samples via inverse-CDF transform of a uniform draw:
/// heavy upper tail, the regime p999 exists to measure.
fn arb_pareto(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0005f64..0.9995, 1..max_len).prop_map(|us| {
        us.into_iter()
            .map(|u| 0.5 * (1.0 - u).powf(-1.0 / 1.1))
            .collect()
    })
}

/// MMPP-shaped samples: a quiet exponential-ish phase with occasional
/// bursts an order of magnitude hotter (bimodal response times).
fn arb_mmpp(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec((0.001f64..0.999, 0.0f64..1.0), 1..max_len).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(u, phase)| {
                let base = -(1.0 - u).ln();
                if phase < 0.2 {
                    10.0 + 12.0 * base
                } else {
                    0.2 + base
                }
            })
            .collect()
    })
}

/// Asserts the sketch's quantile error bound against the exact values at
/// the tail program's three reporting points plus the extremes.
fn assert_within_guarantee(sketch: &TailSketch, values: &[f64]) {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    assert_eq!(sketch.quantile(0.0).to_bits(), sorted[0].to_bits());
    assert_eq!(
        sketch.quantile(1.0).to_bits(),
        sorted[sorted.len() - 1].to_bits()
    );
    for q in [0.5, 0.99, 0.999] {
        let got = sketch.quantile(q);
        if sketch.is_exact() {
            assert_eq!(
                got.to_bits(),
                quantile(&sorted, q).to_bits(),
                "exact mode must match stats::quantile bit for bit at q = {q}"
            );
            continue;
        }
        // Compacted mode reports the bucket of the rank-rounded order
        // statistic: that statistic lies between the two order
        // statistics the type-7 interpolation blends, so the bound is
        // one bucket of relative error around that bracket (plus the
        // absolute floor for underflow values).
        let pos = q * (sorted.len() - 1) as f64;
        let lo = sorted[pos.floor() as usize];
        let hi = sorted[pos.ceil() as usize];
        let eps = 2.0 * TailSketch::RELATIVE_ERROR;
        let floor = TailSketch::FLOOR;
        assert!(
            got >= lo * (1.0 - eps) - floor && got <= hi * (1.0 + eps) + floor,
            "q = {q}: sketch {got} outside [{lo}, {hi}] ± guarantee"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Differential: uniform samples, both exact and compacted regimes
    /// (cap 512 leaves short vectors exact and long ones compacted).
    #[test]
    fn uniform_quantiles_within_guarantee(values in arb_uniform(900)) {
        let mut s = TailSketch::new(512);
        for &v in &values {
            s.record(v);
        }
        assert_within_guarantee(&s, &values);
    }

    /// Differential: Pareto-shaped heavy tails.
    #[test]
    fn pareto_quantiles_within_guarantee(values in arb_pareto(900)) {
        let mut s = TailSketch::new(256);
        for &v in &values {
            s.record(v);
        }
        assert_within_guarantee(&s, &values);
    }

    /// Differential: MMPP-shaped bimodal samples.
    #[test]
    fn mmpp_quantiles_within_guarantee(values in arb_mmpp(900)) {
        let mut s = TailSketch::new(256);
        for &v in &values {
            s.record(v);
        }
        assert_within_guarantee(&s, &values);
    }

    /// Merge commutes at bit level, at a capacity small enough that the
    /// union usually compacts and large enough that it sometimes stays
    /// exact — both paths are exercised.
    #[test]
    fn merge_commutes(a in arb_mmpp(200), b in arb_pareto(200)) {
        for cap in [16usize, 1024] {
            let mut sa = TailSketch::new(cap);
            for &v in &a {
                sa.record(v);
            }
            let mut sb = TailSketch::new(cap);
            for &v in &b {
                sb.record(v);
            }
            let mut ab = sa.clone();
            ab.merge(&sb);
            let mut ba = sb.clone();
            ba.merge(&sa);
            prop_assert!(ab == ba, "merge must commute bit for bit at cap {}", cap);
        }
    }

    /// Merge associates at bit level.
    #[test]
    fn merge_associates(
        a in arb_uniform(150),
        b in arb_pareto(150),
        c in arb_mmpp(150),
    ) {
        for cap in [16usize, 1024] {
            let sketch_of = |vs: &[f64]| {
                let mut s = TailSketch::new(cap);
                for &v in vs {
                    s.record(v);
                }
                s
            };
            let (sa, sb, sc) = (sketch_of(&a), sketch_of(&b), sketch_of(&c));
            let mut left = sa.clone();
            left.merge(&sb);
            left.merge(&sc);
            let mut bc = sb.clone();
            bc.merge(&sc);
            let mut right = sa.clone();
            right.merge(&bc);
            prop_assert!(left == right, "merge must associate bit for bit at cap {}", cap);
        }
    }

    /// Merging the sketches of any split of a stream equals sketching
    /// the whole stream — the exact situation of per-trial sketches
    /// folded by the runner, whatever the worker layout.
    #[test]
    fn merge_of_splits_equals_whole_stream(
        values in arb_mmpp(600),
        cut_a in 0.0f64..1.0,
        cut_b in 0.0f64..1.0,
    ) {
        for cap in [16usize, 512] {
            let mut whole = TailSketch::new(cap);
            for &v in &values {
                whole.record(v);
            }
            let i = (cut_a * values.len() as f64) as usize;
            let j = (cut_b * values.len() as f64) as usize;
            let (i, j) = (i.min(j), i.max(j));
            let mut folded = TailSketch::new(cap);
            for part in [&values[..i], &values[i..j], &values[j..]] {
                let mut s = TailSketch::new(cap);
                for &v in part {
                    s.record(v);
                }
                folded.merge(&s);
            }
            prop_assert!(
                folded == whole,
                "merge of splits must equal the whole-stream sketch at cap {}",
                cap
            );
        }
    }
}
